// Package obs is the observability layer of the detector stack: a
// zero-allocation-on-hot-path metrics registry (counters, gauges,
// high-water marks and lightweight power-of-two latency histograms)
// plus the structured run-report schema every surface of the
// reproduction emits — `rmarace replay -report`, `rmarace stats`,
// BENCH_*.json snapshots and the library's RunConfig.
//
// The pipeline packages (internal/engine, internal/rma, internal/core,
// internal/store) record through the Recorder interface. The default
// recorder is Disabled, whose methods do nothing: instrumented hot
// paths stay allocation-free and branch on a cached Enabled() bool so
// an un-instrumented run pays one predictable branch per record site.
// A *Registry records for real; every update is a handful of atomic
// operations on pre-grown series, so recording itself allocates only
// when a metric sees a new label (rank, shard or target index) for the
// first time.
//
// The metric inventory is a closed enum rather than a string namespace:
// the hot path indexes a fixed array, the report schema can validate
// names, and a PR adding a metric extends the enum in one place.
package obs

// Kind classifies how a metric's value is updated and reported.
type Kind uint8

const (
	// KindCounter is a monotonically increasing sum (Add).
	KindCounter Kind = iota
	// KindGauge is a last-write-wins level (Set).
	KindGauge
	// KindHighWater is a maximum over the run (SetMax).
	KindHighWater
	// KindHistogram is a power-of-two bucketed distribution with count,
	// sum and max (Observe).
	KindHistogram
)

// String returns the wire name of the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHighWater:
		return "high_water"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Metric enumerates every instrumented quantity of the pipeline. Each
// metric carries one integer label dimension (a rank, shard or target
// index); the label of a metric whose dimension does not apply is 0.
type Metric uint8

const (
	// EngineReceived counts notifications processed per rank (events
	// and sync markers alike) — the quiescence counter, exported.
	EngineReceived Metric = iota
	// EngineOverflows counts sends that found a rank's notification
	// channel full and had to block (backpressure; nothing is dropped).
	EngineOverflows
	// EngineBlockNanos accumulates wall-clock time senders spent
	// blocked on a full notification channel, per rank.
	EngineBlockNanos
	// EngineQueueDepth is the high-water mark of a rank's notification
	// channel depth.
	EngineQueueDepth
	// ShardQueueDepth is the high-water mark of a shard worker channel's
	// depth (labelled by shard index, aggregated over ranks).
	ShardQueueDepth
	// ShardBusyNanos accumulates time shard workers spent analysing
	// sub-batches, per shard.
	ShardBusyNanos
	// ShardBatches counts sub-batches analysed per shard.
	ShardBatches
	// EpochNanos is the distribution of epoch durations per rank:
	// passive-target LockAll..UnlockAll epochs and the PSCW access
	// (Start..Complete) and exposure (Post..Wait) epochs.
	EpochNanos
	// NotifBatchLen is the distribution of notification batch fill
	// levels at flush time, per target rank.
	NotifBatchLen
	// LockWaitNanos is the distribution of MPI_Win_lock wait times per
	// target rank.
	LockWaitNanos
	// StoreNodes is the high-water mark of stored entries (BST nodes)
	// per rank.
	StoreNodes
	// StoreInserts counts store insertions per rank (fragment and merge
	// churn included).
	StoreInserts
	// StoreDeletes counts store deletions per rank.
	StoreDeletes
	// StabVisited is the distribution of entries visited per stabbing
	// query, per rank — the measured query depth of Algorithm 1.
	StabVisited
	// Fragments counts fragment pieces produced by the §4.1
	// fragmentation pass, per rank.
	Fragments
	// Merges counts node coalescings applied by the §4.2 merging pass
	// (fast-path boundary merges included), per rank.
	Merges
	// Races counts detected data races per owning rank.
	Races
	// ClockPromotions is the number of rank states promoted from the
	// scalar epoch representation to a base-sharing clock at a
	// collective join (FastTrack-style adaptation, see internal/vc).
	ClockPromotions
	// ClockDemotions is the number of rank states demoted back to the
	// scalar representation. Clock components never decrease, so this
	// stays 0 under the current synchronisation surface.
	ClockDemotions
	// ClockEpochSnapshots counts happens-before snapshots served as
	// packed scalar epochs (8 bytes instead of 8·P).
	ClockEpochSnapshots
	// ClockSharedSnapshots counts snapshots served as base-sharing
	// promoted clocks (O(1) each; one O(P) base per join generation).
	ClockSharedSnapshots
	// ClockVectorSnapshots counts full-vector snapshots (the
	// always-vector baseline representation).
	ClockVectorSnapshots
	// ClockBytes is the happens-before clock payload actually allocated
	// by the adaptive representation over the run.
	ClockBytes
	// ClockBytesVector is the payload an always-vector run would have
	// allocated for the same call sequence (8·P per snapshot) — the
	// §5.3 piggybacking cost the adaptive scheme avoids.
	ClockBytesVector
	// ClockEpochsHeld is the number of rank states currently in the
	// scalar epoch representation.
	ClockEpochsHeld
	// ClockFullLive is the number of full O(P) vectors currently held
	// by the shared clock state.
	ClockFullLive
	// DepotEntries is the number of unique call stacks interned in the
	// process-wide stack depot.
	DepotEntries
	// DepotBytes is the depot's retained payload (rendered text + pcs).
	DepotBytes
	// DepotHits counts stack captures resolved to an existing depot id.
	DepotHits
	// DepotMisses counts stack captures that interned a new stack.
	DepotMisses
	// TraceIngestBytes counts trace bytes consumed by a streaming replay
	// (JSON or binary source alike).
	TraceIngestBytes
	// TraceIngestRecords counts trace records consumed by a streaming
	// replay.
	TraceIngestRecords
	// AnalyzerEvictions counts cold (owner, window) analyzers retired by
	// the bounded-memory replay's eviction policy.
	AnalyzerEvictions
	// PeakRSS is the high-water mark of the live heap (HeapAlloc)
	// sampled during a streaming replay — the resident-memory proxy the
	// 10k-rank scale sweep gates on.
	PeakRSS
	// ServeSessions counts analysis sessions admitted by the daemon,
	// labelled by interned tenant id.
	ServeSessions
	// ServeActiveSessions is a gauge of currently running sessions per
	// tenant (moved by ±1 at session start/finish).
	ServeActiveSessions
	// ServeQuotaRejects counts sessions turned away with 429 by
	// admission control (daemon-wide cap or per-tenant concurrency
	// quota), per tenant.
	ServeQuotaRejects
	// ServeLimitAborts counts sessions aborted mid-stream with 413 for
	// exceeding their per-session ingest byte or record quota, per
	// tenant.
	ServeLimitAborts
	// ServeRaces counts sessions that ended in a race verdict, per
	// tenant.
	ServeRaces
	// ServeQueueWaitNanos accumulates time admitted sessions spent
	// waiting for a worker-pool slot, per tenant — the daemon's
	// backpressure signal, the serve-side analogue of EngineBlockNanos.
	ServeQueueWaitNanos
	// ServeStageQueueNanos is the distribution of per-session
	// queue-wait times (admission to worker dequeue), per tenant.
	ServeStageQueueNanos
	// ServeStageIngestNanos is the distribution of per-session ingest
	// times (first record to source EOF or early race stop), per tenant.
	ServeStageIngestNanos
	// ServeStageDrainNanos is the distribution of per-session analysis
	// drain times (EOF to final verdict), per tenant.
	ServeStageDrainNanos
	// ServeStageReportNanos is the distribution of per-session report
	// build times (verdict to retained run report), per tenant.
	ServeStageReportNanos

	// NumMetrics bounds the enum; it is not a metric.
	NumMetrics
)

// metricInfo is the static metadata of one metric.
type metricInfo struct {
	name  string
	kind  Kind
	label string
}

var metricInfos = [NumMetrics]metricInfo{
	EngineReceived:   {"engine_received", KindCounter, "rank"},
	EngineOverflows:  {"engine_overflows", KindCounter, "rank"},
	EngineBlockNanos: {"engine_block_nanos", KindCounter, "rank"},
	EngineQueueDepth: {"engine_queue_depth", KindHighWater, "rank"},
	ShardQueueDepth:  {"shard_queue_depth", KindHighWater, "shard"},
	ShardBusyNanos:   {"shard_busy_nanos", KindCounter, "shard"},
	ShardBatches:     {"shard_batches", KindCounter, "shard"},
	EpochNanos:       {"epoch_nanos", KindHistogram, "rank"},
	NotifBatchLen:    {"notif_batch_len", KindHistogram, "target"},
	LockWaitNanos:    {"lock_wait_nanos", KindHistogram, "target"},
	StoreNodes:       {"store_nodes", KindHighWater, "rank"},
	StoreInserts:     {"store_inserts", KindCounter, "rank"},
	StoreDeletes:     {"store_deletes", KindCounter, "rank"},
	StabVisited:      {"stab_visited", KindHistogram, "rank"},
	Fragments:        {"fragments", KindCounter, "rank"},
	Merges:           {"merges", KindCounter, "rank"},
	Races:            {"races", KindCounter, "rank"},
	// The clock/depot gauges are process-wide levels set idempotently at
	// report time from MustShared.ClockStats and depot.GlobalStats; the
	// rank dimension does not apply (label 0 by convention).
	ClockPromotions:      {"clock_promotions", KindGauge, "rank"},
	ClockDemotions:       {"clock_demotions", KindGauge, "rank"},
	ClockEpochSnapshots:  {"clock_epoch_snapshots", KindGauge, "rank"},
	ClockSharedSnapshots: {"clock_shared_snapshots", KindGauge, "rank"},
	ClockVectorSnapshots: {"clock_vector_snapshots", KindGauge, "rank"},
	ClockBytes:           {"clock_bytes", KindGauge, "rank"},
	ClockBytesVector:     {"clock_bytes_vector", KindGauge, "rank"},
	ClockEpochsHeld:      {"clock_epochs_held", KindGauge, "rank"},
	ClockFullLive:        {"clock_full_clocks_live", KindGauge, "rank"},
	DepotEntries:         {"depot_entries", KindGauge, "rank"},
	DepotBytes:           {"depot_bytes", KindGauge, "rank"},
	DepotHits:            {"depot_hits", KindGauge, "rank"},
	DepotMisses:          {"depot_misses", KindGauge, "rank"},
	// Trace-ingest metrics are process-wide like the clock/depot gauges
	// (label 0 by convention).
	TraceIngestBytes:   {"trace_ingest_bytes", KindCounter, "rank"},
	TraceIngestRecords: {"trace_ingest_records", KindCounter, "rank"},
	AnalyzerEvictions:  {"analyzer_evictions", KindCounter, "rank"},
	PeakRSS:            {"peak_rss_bytes", KindHighWater, "rank"},
	// The serve_* metrics are recorded by the analysis daemon
	// (internal/serve) on its daemon-wide registry; their label is an
	// interned tenant id (arrival order, 0-based), reported by the
	// daemon's /v1/tenants endpoint.
	ServeSessions:       {"serve_sessions_total", KindCounter, "tenant"},
	ServeActiveSessions: {"serve_active_sessions", KindGauge, "tenant"},
	ServeQuotaRejects:   {"serve_quota_rejects", KindCounter, "tenant"},
	ServeLimitAborts:    {"serve_limit_aborts", KindCounter, "tenant"},
	ServeRaces:          {"serve_races", KindCounter, "tenant"},
	ServeQueueWaitNanos: {"serve_queue_wait_nanos", KindCounter, "tenant"},
	// The per-stage wall-time histograms decompose a session's latency:
	// queue-wait, ingest, analysis drain, report build (PR 9). Recorded
	// on the daemon registry per tenant and on each session's private
	// registry at label 0.
	ServeStageQueueNanos:  {"serve_stage_queue_nanos", KindHistogram, "tenant"},
	ServeStageIngestNanos: {"serve_stage_ingest_nanos", KindHistogram, "tenant"},
	ServeStageDrainNanos:  {"serve_stage_drain_nanos", KindHistogram, "tenant"},
	ServeStageReportNanos: {"serve_stage_report_nanos", KindHistogram, "tenant"},
}

// Name returns the metric's wire name (snake_case, stable).
func (m Metric) Name() string {
	if m < NumMetrics {
		return metricInfos[m].name
	}
	return "unknown"
}

// Kind returns how the metric is updated.
func (m Metric) Kind() Kind {
	if m < NumMetrics {
		return metricInfos[m].kind
	}
	return KindCounter
}

// LabelDim names the metric's label dimension ("rank", "shard",
// "target").
func (m Metric) LabelDim() string {
	if m < NumMetrics {
		return metricInfos[m].label
	}
	return ""
}

// MetricByName resolves a wire name back to its enum value; ok is
// false for unknown names.
func MetricByName(name string) (Metric, bool) {
	for m := Metric(0); m < NumMetrics; m++ {
		if metricInfos[m].name == name {
			return m, true
		}
	}
	return 0, false
}

// Recorder is the hot-path recording interface. Implementations must
// be safe for concurrent use; arguments are plain integers so calls
// never box or escape. Call sites cache Enabled() and skip the call
// entirely when recording is off.
type Recorder interface {
	// Add increments a counter (or moves a gauge by delta).
	Add(m Metric, label int, delta int64)
	// Set overwrites a gauge's level.
	Set(m Metric, label int, v int64)
	// SetMax raises a high-water mark to v if v is larger.
	SetMax(m Metric, label int, v int64)
	// Observe records one histogram sample.
	Observe(m Metric, label int, v int64)
	// Enabled reports whether recording does anything; call sites guard
	// their instrumentation with it so a disabled recorder costs one
	// branch, not an interface call per metric.
	Enabled() bool
}

// nop is the disabled recorder.
type nop struct{}

func (nop) Add(Metric, int, int64)     {}
func (nop) Set(Metric, int, int64)     {}
func (nop) SetMax(Metric, int, int64)  {}
func (nop) Observe(Metric, int, int64) {}
func (nop) Enabled() bool              { return false }

// Disabled is the no-op default recorder: every method does nothing
// and Enabled reports false.
var Disabled Recorder = nop{}

// OrDisabled returns r, or Disabled when r is nil, so config structs
// can leave the recorder unset.
func OrDisabled(r Recorder) Recorder {
	if r == nil {
		return Disabled
	}
	return r
}
