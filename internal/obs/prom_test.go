package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestWritePromGolden: the exposition of a known registry is
// byte-stable — counters, high-water gauges and cumulative
// power-of-two histogram buckets all render as documented.
func TestWritePromGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Add(EngineReceived, 0, 5)
	reg.Add(EngineReceived, 2, 7)
	reg.SetMax(EngineQueueDepth, 1, 9)
	reg.Observe(EpochNanos, 0, 1) // bucket [1,2) -> le="1"
	reg.Observe(EpochNanos, 0, 6) // bucket [4,8) -> le="7"

	var buf bytes.Buffer
	if err := WriteProm(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `# HELP rmarace_engine_received rmarace metric engine_received (per rank)
# TYPE rmarace_engine_received counter
rmarace_engine_received{rank="0"} 5
rmarace_engine_received{rank="2"} 7
# HELP rmarace_engine_queue_depth rmarace metric engine_queue_depth (per rank)
# TYPE rmarace_engine_queue_depth gauge
rmarace_engine_queue_depth{rank="1"} 9
# HELP rmarace_epoch_nanos rmarace metric epoch_nanos (per rank)
# TYPE rmarace_epoch_nanos histogram
rmarace_epoch_nanos_bucket{rank="0",le="1"} 1
rmarace_epoch_nanos_bucket{rank="0",le="7"} 2
rmarace_epoch_nanos_bucket{rank="0",le="+Inf"} 2
rmarace_epoch_nanos_sum{rank="0"} 7
rmarace_epoch_nanos_count{rank="0"} 2
rmarace_epoch_nanos_max{rank="0"} 6
`
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWritePromFromReport: a report read back from disk renders the
// same exposition as the live registry it came from — the shared
// renderer contract between `stats -format prom` and /metrics.
func TestWritePromFromReport(t *testing.T) {
	reg := NewRegistry()
	reg.Add(StoreInserts, 0, 41)
	reg.Observe(StabVisited, 0, 3)

	var live bytes.Buffer
	if err := WriteProm(&live, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}

	rep := &RunReport{Schema: ReportSchema, Source: "run", Metrics: reg.Snapshot()}
	var ser bytes.Buffer
	if err := rep.WriteJSON(&ser); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&ser)
	if err != nil {
		t.Fatal(err)
	}
	var fromReport bytes.Buffer
	if err := WriteProm(&fromReport, back.Metrics); err != nil {
		t.Fatal(err)
	}
	if live.String() != fromReport.String() {
		t.Fatalf("report-derived exposition diverged:\n--- live ---\n%s--- report ---\n%s", live.String(), fromReport.String())
	}
	if !strings.Contains(live.String(), `rmarace_store_inserts{rank="0"} 41`) {
		t.Fatalf("counter missing:\n%s", live.String())
	}
}

// TestWritePromEscapesLabels: label VALUES are request-supplied (the
// daemon renders tenant names), so quote, backslash and newline must
// be escaped per the exposition spec — in plain series and in every
// histogram line.
func TestWritePromEscapesLabels(t *testing.T) {
	hostile := "a\"b\\c\nd"
	snaps := []MetricSnapshot{
		{
			Name: "serve_sessions_total", Kind: KindCounter.String(), LabelDim: "tenant",
			Series: []SeriesPoint{{Label: 0, LabelName: hostile, Value: 2}},
		},
		{
			Name: "serve_stage_ingest_nanos", Kind: KindHistogram.String(), LabelDim: "tenant",
			Series: []SeriesPoint{{
				Label: 0, LabelName: hostile, Value: 1, Sum: 5, Max: 5,
				Buckets: []BucketCount{{Low: 4, Count: 1}},
			}},
		},
	}
	var buf bytes.Buffer
	if err := WriteProm(&buf, snaps); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	escaped := `tenant="a\"b\\c\nd"`
	for _, want := range []string{
		`rmarace_serve_sessions_total{` + escaped + `} 2`,
		`rmarace_serve_stage_ingest_nanos_bucket{` + escaped + `,le="7"} 1`,
		`rmarace_serve_stage_ingest_nanos_sum{` + escaped + `} 5`,
		`rmarace_serve_stage_ingest_nanos_count{` + escaped + `} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, hostile) {
		t.Error("exposition contains the raw unescaped label value")
	}
	// A series without a resolved name still renders its integer label.
	var plain bytes.Buffer
	_ = WriteProm(&plain, []MetricSnapshot{{
		Name: "serve_sessions_total", Kind: KindCounter.String(), LabelDim: "tenant",
		Series: []SeriesPoint{{Label: 3, Value: 1}},
	}})
	if !strings.Contains(plain.String(), `rmarace_serve_sessions_total{tenant="3"} 1`) {
		t.Errorf("integer label lost: %s", plain.String())
	}
}
