package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestWritePromGolden: the exposition of a known registry is
// byte-stable — counters, high-water gauges and cumulative
// power-of-two histogram buckets all render as documented.
func TestWritePromGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Add(EngineReceived, 0, 5)
	reg.Add(EngineReceived, 2, 7)
	reg.SetMax(EngineQueueDepth, 1, 9)
	reg.Observe(EpochNanos, 0, 1) // bucket [1,2) -> le="1"
	reg.Observe(EpochNanos, 0, 6) // bucket [4,8) -> le="7"

	var buf bytes.Buffer
	if err := WriteProm(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `# HELP rmarace_engine_received rmarace metric engine_received (per rank)
# TYPE rmarace_engine_received counter
rmarace_engine_received{rank="0"} 5
rmarace_engine_received{rank="2"} 7
# HELP rmarace_engine_queue_depth rmarace metric engine_queue_depth (per rank)
# TYPE rmarace_engine_queue_depth gauge
rmarace_engine_queue_depth{rank="1"} 9
# HELP rmarace_epoch_nanos rmarace metric epoch_nanos (per rank)
# TYPE rmarace_epoch_nanos histogram
rmarace_epoch_nanos_bucket{rank="0",le="1"} 1
rmarace_epoch_nanos_bucket{rank="0",le="7"} 2
rmarace_epoch_nanos_bucket{rank="0",le="+Inf"} 2
rmarace_epoch_nanos_sum{rank="0"} 7
rmarace_epoch_nanos_count{rank="0"} 2
rmarace_epoch_nanos_max{rank="0"} 6
`
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWritePromFromReport: a report read back from disk renders the
// same exposition as the live registry it came from — the shared
// renderer contract between `stats -format prom` and /metrics.
func TestWritePromFromReport(t *testing.T) {
	reg := NewRegistry()
	reg.Add(StoreInserts, 0, 41)
	reg.Observe(StabVisited, 0, 3)

	var live bytes.Buffer
	if err := WriteProm(&live, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}

	rep := &RunReport{Schema: ReportSchema, Source: "run", Metrics: reg.Snapshot()}
	var ser bytes.Buffer
	if err := rep.WriteJSON(&ser); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&ser)
	if err != nil {
		t.Fatal(err)
	}
	var fromReport bytes.Buffer
	if err := WriteProm(&fromReport, back.Metrics); err != nil {
		t.Fatal(err)
	}
	if live.String() != fromReport.String() {
		t.Fatalf("report-derived exposition diverged:\n--- live ---\n%s--- report ---\n%s", live.String(), fromReport.String())
	}
	if !strings.Contains(live.String(), `rmarace_store_inserts{rank="0"} 41`) {
		t.Fatalf("counter missing:\n%s", live.String())
	}
}
