package telemetry

import (
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the running binary: the /v1/version document and
// the /healthz suffix. Everything comes from runtime/debug.ReadBuildInfo,
// so it is accurate for any `go build`/`go install` of the module with
// no linker-flag ceremony.
type BuildInfo struct {
	// Module is the main module path ("rmarace").
	Module string `json:"module"`
	// Version is the main module version: a tagged semver when built
	// from a module cache, "(devel)" from a checkout.
	Version string `json:"version"`
	// Go is the toolchain that built the binary.
	Go string `json:"go"`
	// Revision/Time/Modified are the VCS stamp when the build embedded
	// one (builds from a git checkout do; `go test` binaries don't).
	Revision string `json:"revision,omitempty"`
	Time     string `json:"time,omitempty"`
	Modified bool   `json:"modified,omitempty"`
}

// Build returns the binary's build identity, computed once.
var Build = sync.OnceValue(func() BuildInfo {
	b := BuildInfo{Module: "rmarace", Version: "unknown"}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.Go = info.GoVersion
	if info.Main.Path != "" {
		b.Module = info.Main.Path
	}
	if info.Main.Version != "" {
		b.Version = info.Main.Version
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			if len(s.Value) > 12 {
				b.Revision = s.Value[:12]
			} else {
				b.Revision = s.Value
			}
		case "vcs.time":
			b.Time = s.Value
		case "vcs.modified":
			b.Modified = s.Value == "true"
		}
	}
	return b
})
