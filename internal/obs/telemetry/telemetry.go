// Package telemetry is the live half of the observability layer: an
// opt-in HTTP server exposing a running analysis as standard,
// scrape-friendly endpoints. Nothing in the analysis pipeline depends
// on it — the server only reads the metrics registry and a report
// callback — so a run without a telemetry address pays nothing.
//
// Endpoints:
//
//	/metrics      Prometheus text exposition rendered from the live
//	              *obs.Registry (the same renderer as
//	              `rmarace stats -format prom`).
//	/report       a live run-report snapshot (rmarace/run-report/v1
//	              JSON), the same schema rmarace replay -report writes.
//	/healthz      200 "ok" while the server is up; liveness probe.
//	/debug/pprof  net/http/pprof, because a detector overhead question
//	              usually becomes a profile question within minutes.
//
// The analysis daemon (internal/serve) mounts the same endpoints on its
// own mux through Register, and reuses the Server lifecycle through
// NewServer, so a single-run telemetry socket and the multi-tenant
// daemon share one set of handlers.
package telemetry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"rmarace/internal/obs"
)

// Sources supplies the server's data. Registry feeds /metrics; Report,
// when non-nil, is called per /report request and should return a
// consistent snapshot of the run so far (returning nil makes the
// handler answer 503, for a run that has already shut down).
// Snapshot, when non-nil, overrides Registry.Snapshot as the /metrics
// source — the analysis daemon uses it to resolve interned tenant ids
// into named (escaped) label values before rendering.
type Sources struct {
	Registry *obs.Registry
	Report   func() *obs.RunReport
	Snapshot func() []obs.MetricSnapshot
}

// Register mounts the telemetry endpoints — /metrics, /report,
// /healthz and /debug/pprof — on mux. Serve uses it for the
// single-run telemetry socket; the analysis daemon mounts the same
// handlers next to its session API.
func Register(mux *http.ServeMux, src Sources) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		switch {
		case src.Snapshot != nil:
			_ = obs.WriteProm(w, src.Snapshot())
		case src.Registry != nil:
			_ = obs.WriteProm(w, src.Registry.Snapshot())
		}
		// neither attached: an empty exposition is valid
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, _ *http.Request) {
		if src.Report == nil {
			http.Error(w, "no report source attached", http.StatusNotFound)
			return
		}
		rep := src.Report()
		if rep == nil {
			// The callback answers nil when no snapshot is available —
			// e.g. the session already closed. That's a transient server
			// condition, not a handler panic.
			http.Error(w, "report unavailable", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = rep.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		// First token stays "ok" for naive liveness probes; the rest
		// identifies the build so "which binary answered" is one curl.
		b := Build()
		line := "ok " + b.Module + " " + b.Version
		if b.Revision != "" {
			line += " " + b.Revision
		}
		fmt.Fprintln(w, line)
	})
	mux.HandleFunc("GET /v1/version", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(Build())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Server is a running telemetry endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server

	// The background Serve goroutine's exit error, surfaced by Close.
	mu       sync.Mutex
	serveErr error
	done     chan struct{}
}

// Serve starts a telemetry server on addr (e.g. ":9090" or
// "127.0.0.1:0"; the OS picks the port when it is 0 — read it back
// with Addr). The server runs until Close.
func Serve(addr string, src Sources) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	Register(mux, src)
	return NewServer(ln, mux), nil
}

// NewServer serves handler on an already-bound listener until Close.
// The run must never die because its telemetry socket did, so a
// background serve failure is stored rather than fatal; it surfaces
// from the next Close call.
func NewServer(ln net.Listener, handler http.Handler) *Server {
	s := &Server{ln: ln, srv: &http.Server{Handler: handler}, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.mu.Lock()
			s.serveErr = err
			s.mu.Unlock()
		}
	}()
	return s
}

// Addr returns the server's bound address (useful with port 0).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the server's base URL. A TCP listener's unspecified host
// (":0"-style binds) is rewritten to 127.0.0.1 so the URL is dialable;
// any other listener type falls back to splitting its Addr string, so a
// custom listener can't panic the accessor.
func (s *Server) URL() string {
	if s == nil {
		return ""
	}
	if addr, ok := s.ln.Addr().(*net.TCPAddr); ok {
		host := addr.IP.String()
		if addr.IP.IsUnspecified() {
			host = "127.0.0.1"
		}
		return fmt.Sprintf("http://%s", net.JoinHostPort(host, fmt.Sprint(addr.Port)))
	}
	raw := s.ln.Addr().String()
	if host, port, err := net.SplitHostPort(raw); err == nil {
		if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
			host = "127.0.0.1"
		}
		return fmt.Sprintf("http://%s", net.JoinHostPort(host, port))
	}
	return "http://" + raw
}

// Close shuts the server down, waiting briefly for in-flight scrapes,
// and returns any background serve failure joined with the shutdown
// error. Nil-safe so a run that never enabled telemetry can close
// blindly.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	shutdownErr := s.srv.Shutdown(ctx)
	// Shutdown closes the listener, so the Serve goroutine is about to
	// return (or already failed); wait for it so the stored error is
	// complete before reading it.
	select {
	case <-s.done:
	case <-ctx.Done():
	}
	s.mu.Lock()
	serveErr := s.serveErr
	s.mu.Unlock()
	return errors.Join(serveErr, shutdownErr)
}
