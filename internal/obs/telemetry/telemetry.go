// Package telemetry is the live half of the observability layer: an
// opt-in HTTP server exposing a running analysis as standard,
// scrape-friendly endpoints. Nothing in the analysis pipeline depends
// on it — the server only reads the metrics registry and a report
// callback — so a run without a telemetry address pays nothing.
//
// Endpoints:
//
//	/metrics      Prometheus text exposition rendered from the live
//	              *obs.Registry (the same renderer as
//	              `rmarace stats -format prom`).
//	/report       a live run-report snapshot (rmarace/run-report/v1
//	              JSON), the same schema rmarace replay -report writes.
//	/healthz      200 "ok" while the server is up; liveness probe.
//	/debug/pprof  net/http/pprof, because a detector overhead question
//	              usually becomes a profile question within minutes.
package telemetry

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"rmarace/internal/obs"
)

// Sources supplies the server's data. Registry feeds /metrics; Report,
// when non-nil, is called per /report request and should return a
// consistent snapshot of the run so far.
type Sources struct {
	Registry *obs.Registry
	Report   func() *obs.RunReport
}

// Server is a running telemetry endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts a telemetry server on addr (e.g. ":9090" or
// "127.0.0.1:0"; the OS picks the port when it is 0 — read it back
// with Addr). The server runs until Close.
func Serve(addr string, src Sources) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if src.Registry == nil {
			return // no registry attached: an empty exposition is valid
		}
		_ = obs.WriteProm(w, src.Registry.Snapshot())
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, _ *http.Request) {
		if src.Report == nil {
			http.Error(w, "no report source attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = src.Report().WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go func() {
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// The run must never die because its telemetry socket did;
			// the error surfaces on the next Close call instead.
			_ = err
		}
	}()
	return s, nil
}

// Addr returns the server's bound address (useful with port 0).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the server's base URL.
func (s *Server) URL() string {
	if s == nil {
		return ""
	}
	addr := s.ln.Addr().(*net.TCPAddr)
	host := addr.IP.String()
	if addr.IP.IsUnspecified() {
		host = "127.0.0.1"
	}
	return fmt.Sprintf("http://%s", net.JoinHostPort(host, fmt.Sprint(addr.Port)))
}

// Close shuts the server down, waiting briefly for in-flight scrapes.
// Nil-safe so a run that never enabled telemetry can close blindly.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}
