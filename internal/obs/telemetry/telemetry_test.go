package telemetry

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"

	"rmarace/internal/obs"
)

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

// TestServeEndpoints: /healthz answers, /metrics serves the shared
// Prometheus renderer's exact output for the live registry, and
// /report serves a valid run-report document.
func TestServeEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Add(obs.EngineReceived, 0, 3)
	srv, err := Serve("127.0.0.1:0", Sources{
		Registry: reg,
		Report: func() *obs.RunReport {
			return &obs.RunReport{Schema: obs.ReportSchema, Source: "run", Metrics: reg.Snapshot()}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body, _ := get(t, srv.URL()+"/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body, hdr := get(t, srv.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	var want bytes.Buffer
	if err := obs.WriteProm(&want, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if body != want.String() {
		t.Fatalf("/metrics diverged from WriteProm:\n--- got ---\n%s--- want ---\n%s", body, want.String())
	}

	code, body, hdr = get(t, srv.URL()+"/report")
	if code != http.StatusOK {
		t.Fatalf("/report status %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/report content type %q", ct)
	}
	rep, err := obs.ReadReport(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/report is not a valid run report: %v", err)
	}
	if rep.Source != "run" {
		t.Fatalf("report source %q", rep.Source)
	}
}

// TestScrapeTracksRegistry: successive scrapes see the registry's
// live values — a mid-run scrape reads the run so far, and the final
// scrape matches the final report's metrics exactly.
func TestScrapeTracksRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := Serve("127.0.0.1:0", Sources{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	reg.Add(obs.StoreInserts, 1, 10) // "mid-run"
	_, mid, _ := get(t, srv.URL()+"/metrics")
	if !strings.Contains(mid, `rmarace_store_inserts{rank="1"} 10`) {
		t.Fatalf("mid-run scrape missing counter:\n%s", mid)
	}

	reg.Add(obs.StoreInserts, 1, 5) // the run finishes
	_, fin, _ := get(t, srv.URL()+"/metrics")
	if !strings.Contains(fin, `rmarace_store_inserts{rank="1"} 15`) {
		t.Fatalf("final scrape stale:\n%s", fin)
	}
	var fromReport bytes.Buffer
	if err := obs.WriteProm(&fromReport, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if fin != fromReport.String() {
		t.Fatalf("final scrape diverged from final report metrics:\n--- scrape ---\n%s--- report ---\n%s", fin, fromReport.String())
	}
}

// TestReportWithoutSource: /report without a callback is a 404, and an
// empty registry still serves a valid (empty) exposition.
func TestReportWithoutSource(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", Sources{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, _, _ := get(t, srv.URL()+"/report")
	if code != http.StatusNotFound {
		t.Fatalf("/report without source = %d, want 404", code)
	}
	code, body, _ := get(t, srv.URL()+"/metrics")
	if code != http.StatusOK || body != "" {
		t.Fatalf("/metrics without registry = %d %q", code, body)
	}
}

// TestCloseStopsServing: after Close the listener is gone; a nil
// server closes without panicking.
func TestCloseStopsServing(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", Sources{})
	if err != nil {
		t.Fatal(err)
	}
	url := srv.URL()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("server still answering after Close")
	}
	var nilSrv *Server
	if err := nilSrv.Close(); err != nil {
		t.Fatal(err)
	}
	if nilSrv.Addr() != "" || nilSrv.URL() != "" {
		t.Fatal("nil server has an address")
	}
}
