package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"rmarace/internal/obs"
)

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

// TestServeEndpoints: /healthz answers, /metrics serves the shared
// Prometheus renderer's exact output for the live registry, and
// /report serves a valid run-report document.
func TestServeEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Add(obs.EngineReceived, 0, 3)
	srv, err := Serve("127.0.0.1:0", Sources{
		Registry: reg,
		Report: func() *obs.RunReport {
			return &obs.RunReport{Schema: obs.ReportSchema, Source: "run", Metrics: reg.Snapshot()}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body, _ := get(t, srv.URL()+"/healthz")
	if code != http.StatusOK || !strings.HasPrefix(body, "ok ") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	// The liveness line identifies the build: "ok <module> <version>".
	if !strings.Contains(body, "rmarace") {
		t.Fatalf("/healthz carries no build identity: %q", body)
	}

	code, body, hdr := get(t, srv.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	var want bytes.Buffer
	if err := obs.WriteProm(&want, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if body != want.String() {
		t.Fatalf("/metrics diverged from WriteProm:\n--- got ---\n%s--- want ---\n%s", body, want.String())
	}

	code, body, hdr = get(t, srv.URL()+"/report")
	if code != http.StatusOK {
		t.Fatalf("/report status %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/report content type %q", ct)
	}
	rep, err := obs.ReadReport(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/report is not a valid run report: %v", err)
	}
	if rep.Source != "run" {
		t.Fatalf("report source %q", rep.Source)
	}
}

// TestScrapeTracksRegistry: successive scrapes see the registry's
// live values — a mid-run scrape reads the run so far, and the final
// scrape matches the final report's metrics exactly.
func TestScrapeTracksRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := Serve("127.0.0.1:0", Sources{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	reg.Add(obs.StoreInserts, 1, 10) // "mid-run"
	_, mid, _ := get(t, srv.URL()+"/metrics")
	if !strings.Contains(mid, `rmarace_store_inserts{rank="1"} 10`) {
		t.Fatalf("mid-run scrape missing counter:\n%s", mid)
	}

	reg.Add(obs.StoreInserts, 1, 5) // the run finishes
	_, fin, _ := get(t, srv.URL()+"/metrics")
	if !strings.Contains(fin, `rmarace_store_inserts{rank="1"} 15`) {
		t.Fatalf("final scrape stale:\n%s", fin)
	}
	var fromReport bytes.Buffer
	if err := obs.WriteProm(&fromReport, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if fin != fromReport.String() {
		t.Fatalf("final scrape diverged from final report metrics:\n--- scrape ---\n%s--- report ---\n%s", fin, fromReport.String())
	}
}

// TestReportWithoutSource: /report without a callback is a 404, and an
// empty registry still serves a valid (empty) exposition.
func TestReportWithoutSource(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", Sources{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, _, _ := get(t, srv.URL()+"/report")
	if code != http.StatusNotFound {
		t.Fatalf("/report without source = %d, want 404", code)
	}
	code, body, _ := get(t, srv.URL()+"/metrics")
	if code != http.StatusOK || body != "" {
		t.Fatalf("/metrics without registry = %d %q", code, body)
	}
}

// TestCloseStopsServing: after Close the listener is gone; a nil
// server closes without panicking.
func TestCloseStopsServing(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", Sources{})
	if err != nil {
		t.Fatal(err)
	}
	url := srv.URL()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("server still answering after Close")
	}
	var nilSrv *Server
	if err := nilSrv.Close(); err != nil {
		t.Fatal(err)
	}
	if nilSrv.Addr() != "" || nilSrv.URL() != "" {
		t.Fatal("nil server has an address")
	}
}

// TestNilReportAnswers503: a Report callback that returns nil (the
// session already closed) must answer 503, not panic the handler.
func TestNilReportAnswers503(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", Sources{
		Report: func() *obs.RunReport { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body, _ := get(t, srv.URL()+"/report")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/report with nil snapshot = %d %q, want 503", code, body)
	}
	// The server survived the request: the next endpoint still answers.
	if code, _, _ := get(t, srv.URL()+"/healthz"); code != http.StatusOK {
		t.Fatalf("server died after nil report: healthz = %d", code)
	}
}

// failingListener fails its first Accept with a permanent error, which
// makes http.Server.Serve return immediately — the background failure
// the server promises to surface on Close.
type failingListener struct {
	addr   net.Addr
	closed chan struct{}
}

var errAcceptBoom = errors.New("synthetic accept failure")

func (l *failingListener) Accept() (net.Conn, error) { return nil, errAcceptBoom }
func (l *failingListener) Close() error {
	select {
	case <-l.closed:
	default:
		close(l.closed)
	}
	return nil
}
func (l *failingListener) Addr() net.Addr { return l.addr }

// blockingListener accepts nothing and blocks until closed — a stand-in
// for any custom (non-TCP) listener type.
type blockingListener struct {
	addr   net.Addr
	closed chan struct{}
}

func (l *blockingListener) Accept() (net.Conn, error) {
	<-l.closed
	return nil, net.ErrClosed
}
func (l *blockingListener) Close() error {
	select {
	case <-l.closed:
	default:
		close(l.closed)
	}
	return nil
}
func (l *blockingListener) Addr() net.Addr { return l.addr }

type strAddr string

func (a strAddr) Network() string { return "custom" }
func (a strAddr) String() string  { return string(a) }

// TestServeErrorSurfacesOnClose: a listener that dies in the background
// must not be swallowed — Close returns the stored serve error.
func TestServeErrorSurfacesOnClose(t *testing.T) {
	ln := &failingListener{addr: strAddr("failing:0"), closed: make(chan struct{})}
	srv := NewServer(ln, http.NewServeMux())
	// Wait for the background goroutine to hit the Accept failure (a
	// Shutdown racing ahead of the first Accept would make Serve return
	// ErrServerClosed instead, which is exactly the non-failure case).
	select {
	case <-srv.done:
	case <-time.After(5 * time.Second):
		t.Fatal("background serve goroutine never exited on the accept failure")
	}
	if err := srv.Close(); err == nil || !errors.Is(err, errAcceptBoom) {
		t.Fatalf("Close after background serve failure = %v, want wrapped %v", err, errAcceptBoom)
	}
}

// TestURLOnCustomListener: URL must not assume *net.TCPAddr — a custom
// listener falls back to string-splitting its Addr, and an address that
// does not split still yields a usable prefix.
func TestURLOnCustomListener(t *testing.T) {
	cases := []struct {
		addr string
		want string
	}{
		{"example.test:8080", "http://example.test:8080"},
		{"[::]:9090", "http://127.0.0.1:9090"},
		{"pipe", "http://pipe"},
	}
	for _, c := range cases {
		ln := &blockingListener{addr: strAddr(c.addr), closed: make(chan struct{})}
		srv := NewServer(ln, http.NewServeMux())
		if got := srv.URL(); got != c.want {
			t.Errorf("URL() on custom listener %q = %q, want %q", c.addr, got, c.want)
		}
		if err := srv.Close(); err != nil {
			t.Errorf("Close on custom listener %q: %v", c.addr, err)
		}
	}
}

// TestVersionEndpoint: /v1/version serves the binary's build identity
// as JSON — module path, version and toolchain from ReadBuildInfo.
func TestVersionEndpoint(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", Sources{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body, hdr := get(t, srv.URL()+"/v1/version")
	if code != http.StatusOK {
		t.Fatalf("/v1/version status %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/v1/version content-type %q", ct)
	}
	var v struct {
		Module  string `json:"module"`
		Version string `json:"version"`
		Go      string `json:"go"`
	}
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatalf("/v1/version is not JSON: %v\n%s", err, body)
	}
	if v.Module != "rmarace" {
		t.Errorf("module = %q, want rmarace", v.Module)
	}
	if v.Version == "" || v.Go == "" {
		t.Errorf("missing build fields: %+v", v)
	}
	// The cached identity is what /healthz prints too.
	if b := Build(); b.Module != v.Module || b.Version != v.Version {
		t.Errorf("Build() = %+v disagrees with endpoint %+v", b, v)
	}
}
