package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// ReportSchema identifies the run-report JSON schema. Consumers
// (rmarace stats, the CI validation step) reject other values, so the
// version bumps whenever a field changes meaning.
const ReportSchema = "rmarace/run-report/v1"

// RunReport is the structured summary of one analysed run — a live
// instrumented execution, a trace replay or a benchmark workload. It
// is the shared schema of `rmarace replay -report`, `rmarace stats`
// and the run sections of BENCH_*.json.
type RunReport struct {
	Schema string `json:"schema"`
	// Source says what produced the report: "run", "replay" or "bench".
	Source string `json:"source,omitempty"`
	Method string `json:"method,omitempty"`
	Ranks  int    `json:"ranks,omitempty"`
	// Events counts analysed access events; Epochs completed epochs.
	Events int64 `json:"events,omitempty"`
	Epochs int64 `json:"epochs,omitempty"`
	// MaxNodes is the BST high-water aggregate (Table 4).
	MaxNodes int64 `json:"max_nodes,omitempty"`
	// Windows breaks the analysis footprint down per window.
	Windows []WindowReport `json:"windows,omitempty"`
	// EpochLatency summarises the per-rank epoch-duration histogram.
	EpochLatency []LatencySummary `json:"epoch_latency,omitempty"`
	// Metrics is the full registry snapshot.
	Metrics []MetricSnapshot `json:"metrics,omitempty"`
	// Races lists detected races with full provenance; the Message of
	// each is the byte-identical Fig. 9 line.
	Races []RaceReport `json:"races,omitempty"`
}

// WindowReport is one window's analysis footprint.
type WindowReport struct {
	Name            string  `json:"name"`
	PerRankMaxNodes []int   `json:"per_rank_max_nodes,omitempty"`
	TotalMaxNodes   int     `json:"total_max_nodes"`
	Accesses        uint64  `json:"accesses"`
	PerRankReceived []int64 `json:"per_rank_received,omitempty"`
	// PerRankOverflows counts notification sends per rank that found
	// the channel full and blocked (backpressure; nothing dropped).
	PerRankOverflows     []int64 `json:"per_rank_overflows,omitempty"`
	PerRankShardMaxNodes [][]int `json:"per_rank_shard_max_nodes,omitempty"`
	MaxShardNodes        int     `json:"max_shard_nodes,omitempty"`
}

// LatencySummary condenses one label's histogram for quick reading.
type LatencySummary struct {
	Label     int   `json:"label"`
	Count     int64 `json:"count"`
	MeanNanos int64 `json:"mean_nanos"`
	MaxNanos  int64 `json:"max_nanos"`
}

// MetricSnapshot is one metric's full series in the report.
type MetricSnapshot struct {
	Name     string        `json:"name"`
	Kind     string        `json:"kind"`
	LabelDim string        `json:"label_dim,omitempty"`
	Series   []SeriesPoint `json:"series"`
}

// SeriesPoint is one label's value within a metric. For histograms,
// Value is the sample count and Sum/Max/Buckets describe the
// distribution.
type SeriesPoint struct {
	Label int `json:"label"`
	// LabelName, when set, is the resolved human name behind the
	// integer label (e.g. the tenant name behind a serve_* metric's
	// interned tenant id). The Prometheus renderer prefers it over the
	// numeric label, escaping it per the exposition spec.
	LabelName string        `json:"label_name,omitempty"`
	Value     int64         `json:"value"`
	Sum       int64         `json:"sum,omitempty"`
	Max       int64         `json:"max,omitempty"`
	Buckets   []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one non-empty power-of-two histogram bucket.
type BucketCount struct {
	// Low is the bucket's inclusive lower bound.
	Low   int64 `json:"low"`
	Count int64 `json:"count"`
}

// RaceReport is one detected race with full provenance: the Fig. 9
// line plus everything a user needs to act on the verdict.
type RaceReport struct {
	// Message is the paper-exact Fig. 9 report line, byte-identical to
	// detector.Race.Message.
	Message string `json:"message"`
	Window  string `json:"window,omitempty"`
	// Owner is the rank whose analyzer detected the race (the window
	// owner of the conflicting region).
	Owner int `json:"owner"`
	// Shard is the address-space shard that held the conflict, -1 for
	// an unsharded analyzer.
	Shard int          `json:"shard"`
	Prev  AccessReport `json:"prev"`
	Cur   AccessReport `json:"cur"`
	// Flight is the owning analyzer's flight-recorder snapshot at the
	// moment of detection, oldest first — the last N accesses and
	// synchronisations that led up to the verdict. Present only when
	// the run enabled the flight recorder.
	Flight []FlightEntryReport `json:"flight,omitempty"`
}

// FlightEntryReport is one flight-recorder event in a race report: an
// analysed access (Acc set) or a synchronisation marker
// (epoch_end/flush/release/sync, Origin set).
type FlightEntryReport struct {
	Seq    uint64        `json:"seq"`
	Kind   string        `json:"kind"`
	Origin int           `json:"origin,omitempty"`
	Acc    *AccessReport `json:"acc,omitempty"`
}

// AccessReport is one side of a race: the access's identity and its
// captured call stack when stack capture was enabled.
type AccessReport struct {
	Rank     int    `json:"rank"`
	Epoch    uint64 `json:"epoch"`
	Type     string `json:"type"`
	Lo       uint64 `json:"lo"`
	Hi       uint64 `json:"hi"`
	Location string `json:"location"` // file:line debug info
	Stack    string `json:"stack,omitempty"`
}

// EpochLatencyFromRegistry derives the per-rank epoch-latency
// summaries from reg's EpochNanos histogram.
func EpochLatencyFromRegistry(reg *Registry) []LatencySummary {
	p := reg.series[EpochNanos].Load()
	if p == nil {
		return nil
	}
	var out []LatencySummary
	for label, s := range *p {
		count := s.val.Load()
		if count == 0 {
			continue
		}
		out = append(out, LatencySummary{
			Label:     label,
			Count:     count,
			MeanNanos: s.sum.Load() / count,
			MaxNanos:  s.max.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// WriteJSON writes the report as indented JSON.
func (r *RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport decodes and validates a run report.
func ReadReport(rd io.Reader) (*RunReport, error) {
	var r RunReport
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("obs: decoding run report: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// Validate checks the report against the schema: known schema string,
// known metric names whose kinds match the inventory, coherent series
// and race entries.
func (r *RunReport) Validate() error {
	if r.Schema != ReportSchema {
		return fmt.Errorf("obs: report schema %q, want %q", r.Schema, ReportSchema)
	}
	for _, ms := range r.Metrics {
		m, ok := MetricByName(ms.Name)
		if !ok {
			return fmt.Errorf("obs: unknown metric %q", ms.Name)
		}
		if got, want := ms.Kind, m.Kind().String(); got != want {
			return fmt.Errorf("obs: metric %q has kind %q, want %q", ms.Name, got, want)
		}
		if len(ms.Series) == 0 {
			return fmt.Errorf("obs: metric %q has an empty series", ms.Name)
		}
		for _, pt := range ms.Series {
			if pt.Label < 0 {
				return fmt.Errorf("obs: metric %q has negative label %d", ms.Name, pt.Label)
			}
			if pt.Value < 0 && m.Kind() != KindGauge {
				return fmt.Errorf("obs: metric %q label %d has negative value %d", ms.Name, pt.Label, pt.Value)
			}
		}
	}
	for i, rc := range r.Races {
		if rc.Message == "" {
			return fmt.Errorf("obs: race %d has no message", i)
		}
		if rc.Shard < -1 {
			return fmt.Errorf("obs: race %d has shard %d", i, rc.Shard)
		}
		if rc.Prev.Type == "" || rc.Cur.Type == "" {
			return fmt.Errorf("obs: race %d is missing an access type", i)
		}
		for j, fe := range rc.Flight {
			if fe.Kind == "" {
				return fmt.Errorf("obs: race %d flight entry %d has no kind", i, j)
			}
			if fe.Kind == "access" && fe.Acc == nil {
				return fmt.Errorf("obs: race %d flight entry %d is an access without one", i, j)
			}
		}
	}
	for _, w := range r.Windows {
		if w.Name == "" {
			return fmt.Errorf("obs: window report without a name")
		}
	}
	return nil
}

// Summary writes a human-readable digest of the report — the
// `rmarace stats` output.
func (r *RunReport) Summary(w io.Writer) {
	fmt.Fprintf(w, "run report (%s)  method=%s  ranks=%d\n", orDash(r.Source), orDash(r.Method), r.Ranks)
	if r.Events > 0 || r.Epochs > 0 || r.MaxNodes > 0 {
		fmt.Fprintf(w, "  events=%d  epochs=%d  max nodes=%d\n", r.Events, r.Epochs, r.MaxNodes)
	}
	for _, win := range r.Windows {
		fmt.Fprintf(w, "  window %-12s total max nodes=%-8d accesses=%d\n", win.Name, win.TotalMaxNodes, win.Accesses)
		if len(win.PerRankReceived) > 0 {
			fmt.Fprintf(w, "    received per rank:  %v\n", win.PerRankReceived)
		}
		if len(win.PerRankOverflows) > 0 && sum64(win.PerRankOverflows) > 0 {
			fmt.Fprintf(w, "    overflows per rank: %v\n", win.PerRankOverflows)
		}
		if win.MaxShardNodes > 0 {
			fmt.Fprintf(w, "    hottest shard nodes: %d\n", win.MaxShardNodes)
		}
	}
	for _, el := range r.EpochLatency {
		fmt.Fprintf(w, "  epoch latency rank %-3d count=%-5d mean=%-12v max=%v\n",
			el.Label, el.Count, time.Duration(el.MeanNanos), time.Duration(el.MaxNanos))
	}
	for _, ms := range r.Metrics {
		var total, max int64
		for _, pt := range ms.Series {
			total += pt.Value
			if pt.Value > max {
				max = pt.Value
			}
		}
		fmt.Fprintf(w, "  metric %-22s %-10s labels=%-3d total=%-10d max=%d\n",
			ms.Name, ms.Kind, len(ms.Series), total, max)
	}
	if len(r.Races) == 0 {
		fmt.Fprintf(w, "  no races detected\n")
		return
	}
	for i, rc := range r.Races {
		fmt.Fprintf(w, "  RACE %d: %s\n", i, rc.Message)
		fmt.Fprintf(w, "    window=%s owner=%d shard=%d\n", orDash(rc.Window), rc.Owner, rc.Shard)
		writeAccess(w, "prev", rc.Prev)
		writeAccess(w, "cur ", rc.Cur)
		if len(rc.Flight) > 0 {
			fmt.Fprintf(w, "    flight recorder: %d events leading up to the verdict (render with `rmarace postmortem`)\n", len(rc.Flight))
		}
	}
}

// WriteFlight renders the race's flight-recorder snapshot as the human
// postmortem dump — one line per retained event, oldest first, with the
// two conflicting accesses marked ">>". It mirrors detector.WriteFlight
// but reads the serialised report form, so `rmarace postmortem` can
// dissect a report file long after the run is gone.
func (rc *RaceReport) WriteFlight(w io.Writer) {
	for _, fe := range rc.Flight {
		marker := "  "
		if fe.Acc != nil && (*fe.Acc == rc.Prev || *fe.Acc == rc.Cur) {
			marker = ">>"
		}
		if fe.Acc != nil {
			a := fe.Acc
			fmt.Fprintf(w, "%s %6d  %-11s %-11s [%d..%d] rank=%d epoch=%d at %s\n",
				marker, fe.Seq, fe.Kind, a.Type, a.Lo, a.Hi, a.Rank, a.Epoch, a.Location)
			continue
		}
		fmt.Fprintf(w, "%s %6d  %-11s origin=%d\n", marker, fe.Seq, fe.Kind, fe.Origin)
	}
}

func writeAccess(w io.Writer, side string, a AccessReport) {
	fmt.Fprintf(w, "    %s: %s [%d..%d] rank=%d epoch=%d at %s\n", side, a.Type, a.Lo, a.Hi, a.Rank, a.Epoch, a.Location)
	if a.Stack != "" {
		fmt.Fprintf(w, "      stack: %s\n", a.Stack)
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func sum64(xs []int64) int64 {
	var t int64
	for _, x := range xs {
		t += x
	}
	return t
}
