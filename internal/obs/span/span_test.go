package span

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// TestChromeTraceFormat asserts the export is valid Chrome trace-event
// JSON: an array of events each carrying ph/ts/pid/tid, with complete
// spans as "X" and the causal edge as an "s"/"f" pair sharing an id.
func TestChromeTraceFormat(t *testing.T) {
	tr := NewTracer(2, 16)
	flow := tr.NextFlow()
	tr.Record(0, Record{Kind: KindPut, Start: 1000, Dur: 500, A: 1, B: 8})
	tr.Record(0, Record{Kind: KindNotifSend, Start: 2000, Dur: 100, A: 1, B: 3, Flow: flow, Phase: FlowStart})
	tr.Record(1, Record{Kind: KindNotifBatch, Start: 3000, Dur: 700, A: 3, B: 0, Flow: flow, Phase: FlowFinish, Tid: TidEngine})
	tr.Record(1, Record{Kind: KindEpoch, Start: 500, Dur: 4000, A: 1, B: 2})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	// The whole export must decode as a JSON array of event objects.
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("export is not a JSON array of events: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("empty export")
	}
	var xs, flowS, flowF int
	for i, ev := range events {
		for _, key := range []string{"ph", "ts", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d missing %q: %v", i, key, ev)
			}
		}
		switch ev["ph"] {
		case "X":
			xs++
			if d, ok := ev["dur"].(float64); !ok || d <= 0 {
				t.Errorf("complete event %d without positive dur: %v", i, ev)
			}
		case "s":
			flowS++
		case "f":
			flowF++
		}
	}
	if xs != 4 {
		t.Errorf("got %d complete spans, want 4", xs)
	}
	if flowS != 1 || flowF != 1 {
		t.Errorf("got %d flow starts and %d finishes, want 1 each", flowS, flowF)
	}
}

// TestExportOrderedByTimestamp: complete events appear in ascending ts
// order, so the golden output is deterministic.
func TestExportOrderedByTimestamp(t *testing.T) {
	tr := NewTracer(1, 8)
	tr.Record(0, Record{Kind: KindPut, Start: 300})
	tr.Record(0, Record{Kind: KindPut, Start: 100})
	tr.Record(0, Record{Kind: KindPut, Start: 200})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Ph string  `json:"ph"`
		Ts float64 `json:"ts"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	last := -1.0
	for _, ev := range events {
		if ev.Ph != "X" {
			continue
		}
		if ev.Ts < last {
			t.Fatalf("complete events out of order: %v after %v", ev.Ts, last)
		}
		last = ev.Ts
	}
}

// TestRingBounded: a ring keeps only its most recent records.
func TestRingBounded(t *testing.T) {
	tr := NewTracer(1, 8)
	for i := 0; i < 100; i++ {
		tr.Record(0, Record{Kind: KindPut, Start: int64(i)})
	}
	recs := tr.snapshot()
	if len(recs) != 8 {
		t.Fatalf("ring holds %d records, want 8", len(recs))
	}
	for _, r := range recs {
		if r.rec.Start < 92 {
			t.Errorf("old record %d survived the wrap", r.rec.Start)
		}
	}
}

// TestNilTracerDisabled: the nil tracer is inert.
func TestNilTracerDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Record(0, Record{Kind: KindPut}) // must not panic
	if err := tr.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("nil tracer export succeeded")
	}
}

// TestConcurrentRecord exercises the lock-free ring from many
// goroutines under the race detector.
func TestConcurrentRecord(t *testing.T) {
	tr := NewTracer(4, 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Record(g%4, Record{Kind: KindNotifBatch, Start: int64(i), A: int64(g)})
			}
		}(g)
	}
	wg.Wait()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkRecord measures the enabled record path (it must stay
// allocation-free so tracing can run on production-scale runs).
func BenchmarkRecord(b *testing.B) {
	tr := NewTracer(1, 1<<12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(0, Record{Kind: KindPut, Start: int64(i), Dur: 10, A: 1, B: 8})
	}
}
