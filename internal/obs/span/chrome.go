package span

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one Chrome trace-event (the JSON array format) as
// Perfetto and chrome://tracing consume it. Timestamps and durations
// are microseconds; pid is the rank, tid the track within the rank.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	ID   uint64            `json:"id,omitempty"`
	BP   string            `json:"bp,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// argNames maps a kind's A/B payload to human-readable arg keys.
func argNames(k Kind) (a, b string) {
	switch k {
	case KindEpoch:
		return "epoch", "targets"
	case KindPut, KindGet, KindAccum:
		return "target", "bytes"
	case KindFlush:
		return "target", ""
	case KindLocal:
		return "lo", "bytes"
	case KindNotifSend:
		return "target", "events"
	case KindNotifBatch:
		return "events", "epoch"
	case KindShardDrain:
		return "shards", ""
	}
	return "a", "b"
}

// events converts the snapshot into chrome trace events: per-rank
// process metadata, one "X" complete event per span, and "s"/"f" flow
// events for the causal edges. Records are ordered by timestamp then
// publication sequence so the output is stable for golden tests.
func (t *Tracer) events() []chromeEvent {
	recs := t.snapshot()
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].rec.Start != recs[j].rec.Start {
			return recs[i].rec.Start < recs[j].rec.Start
		}
		if recs[i].rank != recs[j].rank {
			return recs[i].rank < recs[j].rank
		}
		return recs[i].seq < recs[j].seq
	})

	out := make([]chromeEvent, 0, len(recs)+2*t.Ranks())
	for rank := 0; rank < t.Ranks(); rank++ {
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", Pid: rank,
			Args: map[string]string{"name": fmt.Sprintf("rank %d", rank)},
		})
	}
	for _, tr := range recs {
		rec := tr.rec
		aName, bName := argNames(rec.Kind)
		args := map[string]string{aName: fmt.Sprintf("%d", rec.A)}
		if bName != "" {
			args[bName] = fmt.Sprintf("%d", rec.B)
		}
		ts := float64(rec.Start) / 1e3
		ev := chromeEvent{
			Name: rec.Kind.String(),
			Cat:  "rma",
			Ph:   "X",
			Ts:   ts,
			Dur:  float64(rec.Dur) / 1e3,
			Pid:  tr.rank,
			Tid:  int(rec.Tid),
			Args: args,
		}
		// Perfetto drops zero-duration complete events from some tracks;
		// floor at a nanosecond so every span stays visible.
		if ev.Dur <= 0 {
			ev.Dur = 0.001
		}
		out = append(out, ev)
		// The flow event binds to the enclosing slice at the same
		// pid/tid/ts, which is exactly the span just emitted.
		switch rec.Phase {
		case FlowStart:
			out = append(out, chromeEvent{
				Name: "notif", Cat: "flow", Ph: "s", Ts: ts,
				Pid: tr.rank, Tid: int(rec.Tid), ID: rec.Flow,
			})
		case FlowFinish:
			out = append(out, chromeEvent{
				Name: "notif", Cat: "flow", Ph: "f", BP: "e", Ts: ts,
				Pid: tr.rank, Tid: int(rec.Tid), ID: rec.Flow,
			})
		}
	}
	return out
}

// WriteChromeTrace writes the tracer's spans as a Chrome trace-event
// JSON array, loadable by Perfetto (ui.perfetto.dev) and
// chrome://tracing.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("span: tracing was not enabled for this run")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t.events())
}
