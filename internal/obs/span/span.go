// Package span is the causal-tracing half of the observability layer:
// lightweight spans recording what each rank of a run was doing when —
// epochs opening and closing, one-sided operations, flushes,
// notification batches draining through the engine, shard-pool
// barriers — plus cross-rank causal edges linking a notification
// batch's send site to its analysis on the target.
//
// The design follows the same discipline as the metrics registry
// (package internal/obs): recording is off by default and call sites
// branch on a cached enabled bool, so an untraced run pays one
// predictable branch per site and zero allocations. When tracing is on,
// each span is one fixed-size numeric record written into the issuing
// rank's lock-free ring buffer — one atomic fetch-add to claim a slot,
// plain stores to fill it, one atomic store to publish. Rings are
// bounded: a run longer than the ring keeps the most recent spans,
// which is the flight-recorder behaviour a long 256-rank run wants.
// A slot being overwritten while an exporter reads it can yield a torn
// record; the publication sequence lets the exporter detect and drop
// such slots, and in practice export happens after the run is
// quiescent.
//
// Export renders the rings as Chrome trace-event JSON (the array
// format), which Perfetto and chrome://tracing load directly: ranks
// become processes, spans become "X" complete events, and causal edges
// become "s"/"f" flow events binding the origin's send to the target's
// batch-analysis slice.
package span

import (
	"sync/atomic"
	"time"
)

// Kind classifies a span record. The export layer derives the slice
// name and track from it, keeping records free of strings.
type Kind uint8

const (
	// KindEpoch is one passive-target (or PSCW/fence) epoch of a rank:
	// A carries the epoch number, B the number of targets.
	KindEpoch Kind = iota
	// KindPut is one MPI_Put: A the target rank, B the byte count.
	KindPut
	// KindGet is one MPI_Get: A the target rank, B the byte count.
	KindGet
	// KindAccum is one MPI_Accumulate/MPI_Fetch_and_op: A the target
	// rank, B the byte count.
	KindAccum
	// KindFlush is one MPI_Win_flush: A the target rank (-1 for all).
	KindFlush
	// KindLocal is one instrumented local load/store (replay export
	// only): A the low address, B the byte count.
	KindLocal
	// KindNotifSend marks a notification batch leaving the origin: A the
	// target rank, B the batch length. It opens the batch's causal flow.
	KindNotifSend
	// KindNotifBatch is the engine analysing one notification batch on
	// the owner: A the batch length, B the epoch it was stamped with. It
	// closes the batch's causal flow.
	KindNotifBatch
	// KindShardDrain is one shard-pool flush barrier (sync marker): A
	// the shard count.
	KindShardDrain

	numKinds
)

// String returns the exported slice name of the kind.
func (k Kind) String() string {
	switch k {
	case KindEpoch:
		return "epoch"
	case KindPut:
		return "put"
	case KindGet:
		return "get"
	case KindAccum:
		return "accumulate"
	case KindFlush:
		return "flush"
	case KindLocal:
		return "local"
	case KindNotifSend:
		return "notif-send"
	case KindNotifBatch:
		return "notif-batch"
	case KindShardDrain:
		return "shard-drain"
	}
	return "span"
}

// FlowPhase says what a record's Flow id means.
type FlowPhase uint8

const (
	// FlowNone carries no causal edge.
	FlowNone FlowPhase = iota
	// FlowStart opens causal flow Flow at this span (the send site).
	FlowStart
	// FlowFinish closes causal flow Flow at this span (the receipt).
	FlowFinish
)

// Record is one span: a fixed-size, string-free description of one
// thing one rank did. Start and Dur are nanoseconds on the tracer's
// clock (wall time for live runs, logical time for replays).
type Record struct {
	Start int64
	Dur   int64
	// Flow is the causal-edge id this record participates in (0 none);
	// Phase says whether it opens or closes the edge.
	Flow  uint64
	A, B  int64
	Kind  Kind
	Phase FlowPhase
	// Tid is the track within the rank's process row: TidApp for the
	// rank's own goroutine, TidEngine for its receiver/router.
	Tid uint8
}

// Track ids within one rank's process row.
const (
	// TidApp is the rank's application goroutine (MPI calls, epochs).
	TidApp = 0
	// TidEngine is the rank's engine side (receiver, shard router).
	TidEngine = 1
)

// slot is one published ring entry. seq is 0 while empty or being
// written, sequence+1 once the fields are valid. Fields are atomic
// words (not a plain Record) so writers overwriting a wrapped slot and
// readers snapshotting a live ring never constitute a data race under
// the Go memory model; the sequence check drops records torn by a
// concurrent overwrite.
type slot struct {
	seq                       atomic.Uint64
	start, dur, flow, a, b, t atomic.Int64
}

func (s *slot) store(rec Record) {
	s.start.Store(rec.Start)
	s.dur.Store(rec.Dur)
	s.flow.Store(int64(rec.Flow))
	s.a.Store(rec.A)
	s.b.Store(rec.B)
	s.t.Store(int64(rec.Kind) | int64(rec.Phase)<<8 | int64(rec.Tid)<<16)
}

func (s *slot) load() Record {
	t := s.t.Load()
	return Record{
		Start: s.start.Load(),
		Dur:   s.dur.Load(),
		Flow:  uint64(s.flow.Load()),
		A:     s.a.Load(),
		B:     s.b.Load(),
		Kind:  Kind(t & 0xff),
		Phase: FlowPhase(t >> 8 & 0xff),
		Tid:   uint8(t >> 16 & 0xff),
	}
}

// ring is one rank's bounded span buffer.
type ring struct {
	mask uint64
	cur  atomic.Uint64
	slot []slot
}

func (r *ring) put(rec Record) {
	seq := r.cur.Add(1) - 1
	s := &r.slot[seq&r.mask]
	s.seq.Store(0) // invalidate for readers while the record is torn
	s.store(rec)
	s.seq.Store(seq + 1)
}

// DefaultDepth is the per-rank ring capacity when NewTracer is given a
// non-positive depth: the most recent 16Ki spans per rank survive.
const DefaultDepth = 1 << 14

// Tracer owns the per-rank rings of one run. A nil *Tracer is the
// disabled tracer: Enabled reports false and call sites skip their
// instrumentation, so the zero-configuration path records nothing and
// allocates nothing.
type Tracer struct {
	rings []ring
	flow  atomic.Uint64
	t0    time.Time
	// logical marks a tracer fed with logical (replay) timestamps via
	// RecordAt; Now must not be mixed in.
	logical bool
}

// NewTracer builds a tracer for ranks ranks with the given per-rank
// ring depth (rounded up to a power of two; DefaultDepth when <= 0).
func NewTracer(ranks, depth int) *Tracer {
	if ranks <= 0 {
		ranks = 1
	}
	if depth <= 0 {
		depth = DefaultDepth
	}
	n := 1
	for n < depth {
		n <<= 1
	}
	t := &Tracer{rings: make([]ring, ranks), t0: time.Now()}
	for i := range t.rings {
		t.rings[i].mask = uint64(n - 1)
		t.rings[i].slot = make([]slot, n)
	}
	return t
}

// NewLogicalTracer builds a tracer for replayed runs whose records
// carry logical timestamps (the trace's program-order counters).
func NewLogicalTracer(ranks, depth int) *Tracer {
	t := NewTracer(ranks, depth)
	t.logical = true
	return t
}

// Enabled reports whether the tracer records anything; call sites cache
// it so a nil tracer costs one branch per site.
func (t *Tracer) Enabled() bool { return t != nil }

// Ranks returns the number of per-rank rings.
func (t *Tracer) Ranks() int { return len(t.rings) }

// Now returns the tracer-clock timestamp in nanoseconds since start.
func (t *Tracer) Now() int64 { return int64(time.Since(t.t0)) }

// NextFlow allocates a fresh causal-edge id (never 0).
func (t *Tracer) NextFlow() uint64 { return t.flow.Add(1) }

// Record appends rec to rank's ring. Safe for concurrent use from any
// goroutine; out-of-range ranks are clamped to ring 0 rather than
// dropped, so a mislabelled span still shows up somewhere visible.
func (t *Tracer) Record(rank int, rec Record) {
	if t == nil {
		return
	}
	if rank < 0 || rank >= len(t.rings) {
		rank = 0
	}
	t.rings[rank].put(rec)
}

// taggedRecord pairs a record with its rank and publication sequence
// for export ordering.
type taggedRecord struct {
	rec  Record
	rank int
	seq  uint64
}

// snapshot collects every valid record across the rings. Slots whose
// sequence moved while being read are dropped (torn by a concurrent
// overwrite).
func (t *Tracer) snapshot() []taggedRecord {
	if t == nil {
		return nil
	}
	var out []taggedRecord
	for rank := range t.rings {
		r := &t.rings[rank]
		for i := range r.slot {
			s := &r.slot[i]
			seq := s.seq.Load()
			if seq == 0 {
				continue
			}
			rec := s.load()
			if s.seq.Load() != seq {
				continue // overwritten mid-read
			}
			out = append(out, taggedRecord{rec: rec, rank: rank, seq: seq})
		}
	}
	return out
}

// Len reports how many records are currently held across all rings
// (recent spans only; older ones may have been overwritten).
func (t *Tracer) Len() int { return len(t.snapshot()) }
