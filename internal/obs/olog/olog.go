// Package olog is the structured-logging half of the observability
// layer: a thin skin over log/slog that gives every log line of the
// analysis daemon one correlation identity. Request handlers stamp the
// tenant and session id into the context.Context once
// (WithSession/WithAttrs); every layer below — admission control, the
// worker pool, the streaming replay, the telemetry server — logs
// through the same *slog.Logger, and the context handler appends the
// stamped attributes to each record. One `grep '"session":"s-000042"'`
// over the daemon's JSON log therefore yields the session's whole
// story: admission, queue wait, ingest, eviction and compaction
// events, the verdict.
//
// The discipline mirrors the metrics registry (package internal/obs):
// logging is off by default — Discard's handler reports every level
// disabled, so call sites pay one predictable branch — and hot paths
// must log at LevelDebug or rarer, never per record.
package olog

import (
	"context"
	"io"
	"log/slog"
)

// ctxKey carries the correlation attributes through a context.
type ctxKey struct{}

// WithAttrs returns a context carrying attrs in addition to any the
// context already holds. A logger built by New appends them to every
// record logged through the *Context methods with that context.
func WithAttrs(ctx context.Context, attrs ...slog.Attr) context.Context {
	if len(attrs) == 0 {
		return ctx
	}
	prev, _ := ctx.Value(ctxKey{}).([]slog.Attr)
	// Copy-on-write: contexts fork (one request, many goroutines), so
	// the stored slice is never appended to in place.
	merged := make([]slog.Attr, 0, len(prev)+len(attrs))
	merged = append(merged, prev...)
	merged = append(merged, attrs...)
	return context.WithValue(ctx, ctxKey{}, merged)
}

// WithSession stamps the daemon's correlation identity — tenant and
// session id — into the context. Empty values are omitted so admission
// rejects (which happen before a session id exists) still carry the
// tenant.
func WithSession(ctx context.Context, tenant, session string) context.Context {
	attrs := make([]slog.Attr, 0, 2)
	if tenant != "" {
		attrs = append(attrs, slog.String("tenant", tenant))
	}
	if session != "" {
		attrs = append(attrs, slog.String("session", session))
	}
	return WithAttrs(ctx, attrs...)
}

// Attrs returns the correlation attributes stamped into ctx, nil if
// none.
func Attrs(ctx context.Context) []slog.Attr {
	attrs, _ := ctx.Value(ctxKey{}).([]slog.Attr)
	return attrs
}

// Bind materialises the context's correlation attributes onto the
// logger itself, for layers that log without a context (the streaming
// replay loop, background goroutines). The returned logger emits the
// same attributed records the *Context methods would.
func Bind(ctx context.Context, l *slog.Logger) *slog.Logger {
	l = Or(l)
	attrs := Attrs(ctx)
	if len(attrs) == 0 {
		return l
	}
	args := make([]any, len(attrs))
	for i, a := range attrs {
		args[i] = a
	}
	return l.With(args...)
}

// handler decorates any slog.Handler with the context attributes.
type handler struct {
	slog.Handler
}

func (h handler) Handle(ctx context.Context, r slog.Record) error {
	if attrs := Attrs(ctx); len(attrs) > 0 {
		r.AddAttrs(attrs...)
	}
	return h.Handler.Handle(ctx, r)
}

func (h handler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return handler{h.Handler.WithAttrs(attrs)}
}

func (h handler) WithGroup(name string) slog.Handler {
	return handler{h.Handler.WithGroup(name)}
}

// New builds a JSON logger writing to w at the given level, with the
// context-attribute decoration. This is the daemon's log format: one
// JSON object per line, keys time/level/msg plus the record's and the
// context's attributes.
func New(w io.Writer, level slog.Leveler) *slog.Logger {
	return slog.New(handler{slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})})
}

// discardHandler drops everything and reports every level disabled, so
// call sites guarded by Enabled pay one branch and no allocation.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// discard is the shared disabled logger.
var discard = slog.New(discardHandler{})

// Discard returns the disabled logger: every level reports disabled
// and nothing is ever written.
func Discard() *slog.Logger { return discard }

// Or returns l, or the disabled logger when l is nil, so config
// structs can leave their logger unset.
func Or(l *slog.Logger) *slog.Logger {
	if l == nil {
		return discard
	}
	return l
}

// ParseLevel maps the CLI's -log-level values onto slog levels.
// Unknown names fall back to info.
func ParseLevel(s string) slog.Level {
	switch s {
	case "debug":
		return slog.LevelDebug
	case "warn":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	}
	return slog.LevelInfo
}
