package olog

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"testing"
)

// decodeLines parses a JSON-lines log buffer.
func decodeLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	for dec.More() {
		var m map[string]any
		if err := dec.Decode(&m); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, buf.String())
		}
		out = append(out, m)
	}
	return out
}

// TestContextAttrsPropagate: attributes stamped into a context via
// WithSession ride on every record logged with that context.
func TestContextAttrsPropagate(t *testing.T) {
	var buf bytes.Buffer
	log := New(&buf, slog.LevelInfo)
	ctx := WithSession(context.Background(), "acme", "s-000042")
	log.InfoContext(ctx, "session admitted", "method", "our-contribution")
	log.WarnContext(ctx, "quota abort")
	log.Info("no context attrs")

	lines := decodeLines(t, &buf)
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	for i, want := range []bool{true, true, false} {
		_, hasTenant := lines[i]["tenant"]
		_, hasSession := lines[i]["session"]
		if hasTenant != want || hasSession != want {
			t.Errorf("line %d: tenant=%v session=%v, want both %v", i, hasTenant, hasSession, want)
		}
	}
	if lines[0]["tenant"] != "acme" || lines[0]["session"] != "s-000042" {
		t.Errorf("line 0 attrs = %v", lines[0])
	}
	if lines[0]["msg"] != "session admitted" || lines[0]["method"] != "our-contribution" {
		t.Errorf("line 0 payload = %v", lines[0])
	}
}

// TestWithSessionOmitsEmpty: an admission reject has no session id yet;
// the context must carry the tenant alone. Later layers add the id.
func TestWithSessionOmitsEmpty(t *testing.T) {
	ctx := WithSession(context.Background(), "acme", "")
	if got := Attrs(ctx); len(got) != 1 || got[0].Key != "tenant" {
		t.Fatalf("attrs = %v, want tenant only", got)
	}
	ctx = WithSession(ctx, "", "s-000001")
	if got := Attrs(ctx); len(got) != 2 || got[1].Key != "session" {
		t.Fatalf("attrs after id = %v", got)
	}
}

// TestBind: a logger bound to a context emits the context's attributes
// even when later log calls carry a bare context — the replay loop's
// usage.
func TestBind(t *testing.T) {
	var buf bytes.Buffer
	log := New(&buf, slog.LevelDebug)
	ctx := WithSession(context.Background(), "acme", "s-000007")
	bound := Bind(ctx, log)
	bound.Debug("analyzer evicted", "owner", 3)

	lines := decodeLines(t, &buf)
	if len(lines) != 1 || lines[0]["session"] != "s-000007" || lines[0]["tenant"] != "acme" {
		t.Fatalf("bound line = %v", lines)
	}
}

// TestDiscard: the disabled logger reports every level off, so guarded
// hot paths pay one branch; Or maps nil onto it.
func TestDiscard(t *testing.T) {
	if Discard().Enabled(context.Background(), slog.LevelError) {
		t.Error("discard logger claims ERROR is enabled")
	}
	if Or(nil) != Discard() {
		t.Error("Or(nil) is not the shared discard logger")
	}
	var buf bytes.Buffer
	l := New(&buf, slog.LevelInfo)
	if Or(l) != l {
		t.Error("Or(l) must pass a real logger through")
	}
	Discard().Error("dropped")
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"warn": slog.LevelWarn, "error": slog.LevelError,
		"bogus": slog.LevelInfo, "": slog.LevelInfo,
	} {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}
