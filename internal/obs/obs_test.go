package obs

import (
	"sync"
	"testing"
)

func TestRegistryScalars(t *testing.T) {
	r := NewRegistry()
	r.Add(EngineReceived, 0, 3)
	r.Add(EngineReceived, 0, 4)
	r.Add(EngineReceived, 2, 1)
	if got := r.Value(EngineReceived, 0); got != 7 {
		t.Errorf("counter label 0 = %d, want 7", got)
	}
	if got := r.Value(EngineReceived, 1); got != 0 {
		t.Errorf("untouched label 1 = %d, want 0", got)
	}
	if got := r.Total(EngineReceived); got != 8 {
		t.Errorf("total = %d, want 8", got)
	}

	r.SetMax(StoreNodes, 1, 10)
	r.SetMax(StoreNodes, 1, 4) // lower: ignored
	r.SetMax(StoreNodes, 1, 12)
	if got := r.Value(StoreNodes, 1); got != 12 {
		t.Errorf("high water = %d, want 12", got)
	}

	r.Set(EngineQueueDepth, 0, 9)
	r.Set(EngineQueueDepth, 0, 5)
	// EngineQueueDepth is a high-water metric; Value reads max, which
	// Set does not touch. Use a counter-kind gauge read instead.
	r.Add(ShardBatches, 3, 2)
	if got := r.Value(ShardBatches, 3); got != 2 {
		t.Errorf("shard batches = %d, want 2", got)
	}
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	for _, v := range []int64{1, 2, 3, 1000, 1 << 20} {
		r.Observe(EpochNanos, 1, v)
	}
	if got := r.Value(EpochNanos, 1); got != 5 {
		t.Errorf("histogram count = %d, want 5", got)
	}
	snaps := r.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("snapshot has %d metrics, want 1", len(snaps))
	}
	s := snaps[0]
	if s.Name != "epoch_nanos" || s.Kind != "histogram" || s.LabelDim != "rank" {
		t.Fatalf("bad snapshot header: %+v", s)
	}
	if len(s.Series) != 1 || s.Series[0].Label != 1 {
		t.Fatalf("bad series: %+v", s.Series)
	}
	pt := s.Series[0]
	if pt.Value != 5 || pt.Max != 1<<20 || pt.Sum != 1+2+3+1000+1<<20 {
		t.Errorf("bad histogram point: %+v", pt)
	}
	var bucketTotal int64
	for _, b := range pt.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != 5 {
		t.Errorf("bucket counts sum to %d, want 5", bucketTotal)
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1 << 38, 39}, {1 << 50, histBuckets - 1}}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	if BucketLow(0) != 0 || BucketLow(1) != 1 || BucketLow(4) != 8 {
		t.Error("BucketLow boundaries wrong")
	}
}

// TestRegistryConcurrent hammers every update kind, including series
// growth, from many goroutines; run with -race this is the data-race
// proof of the registry.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				label := (w + i) % 16 // force growth races
				r.Add(EngineReceived, label, 1)
				r.SetMax(StoreNodes, label, int64(i))
				r.Observe(EpochNanos, label, int64(i%1024+1))
				if i%64 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got, want := r.Total(EngineReceived), int64(workers*iters); got != want {
		t.Errorf("received total = %d, want %d (lost updates)", got, want)
	}
	if got, want := r.Total(EpochNanos), int64(workers*iters); got != want {
		t.Errorf("observe count = %d, want %d", got, want)
	}
}

// TestDisabledRecorderAllocations proves the no-op recorder keeps the
// hot path allocation-free, and that a warmed registry records without
// allocating either.
func TestDisabledRecorderAllocations(t *testing.T) {
	rec := Disabled
	if n := testing.AllocsPerRun(100, func() {
		rec.Add(EngineReceived, 0, 1)
		rec.SetMax(StoreNodes, 0, 7)
		rec.Observe(EpochNanos, 0, 42)
	}); n != 0 {
		t.Errorf("Disabled recorder allocates %.1f per call set", n)
	}

	reg := NewRegistry()
	// Warm the labels so the series exist.
	reg.Add(EngineReceived, 3, 1)
	reg.SetMax(StoreNodes, 3, 1)
	reg.Observe(EpochNanos, 3, 1)
	var rec2 Recorder = reg
	if n := testing.AllocsPerRun(100, func() {
		rec2.Add(EngineReceived, 3, 1)
		rec2.SetMax(StoreNodes, 3, 9)
		rec2.Observe(EpochNanos, 3, 42)
	}); n != 0 {
		t.Errorf("warmed registry allocates %.1f per call set", n)
	}
}

func TestMetricMetadata(t *testing.T) {
	seen := map[string]bool{}
	for m := Metric(0); m < NumMetrics; m++ {
		name := m.Name()
		if name == "" || name == "unknown" {
			t.Errorf("metric %d has no name", m)
		}
		if seen[name] {
			t.Errorf("duplicate metric name %q", name)
		}
		seen[name] = true
		back, ok := MetricByName(name)
		if !ok || back != m {
			t.Errorf("MetricByName(%q) = %v, %v", name, back, ok)
		}
		if m.LabelDim() == "" {
			t.Errorf("metric %q has no label dimension", name)
		}
	}
	if _, ok := MetricByName("no-such-metric"); ok {
		t.Error("MetricByName accepted an unknown name")
	}
}

func TestOrDisabled(t *testing.T) {
	if OrDisabled(nil) != Disabled {
		t.Error("OrDisabled(nil) != Disabled")
	}
	reg := NewRegistry()
	if OrDisabled(reg) != Recorder(reg) {
		t.Error("OrDisabled dropped a real recorder")
	}
	if Disabled.Enabled() {
		t.Error("Disabled reports Enabled")
	}
	if !reg.Enabled() {
		t.Error("Registry reports disabled")
	}
}

// TestNilRegistryDisabled: a typed-nil *Registry passed through the
// Recorder interface defeats OrDisabled's nil check; Enabled must
// report false so guarded call sites stay inert (regression: replay
// without -report crashed in store.Instrument on a nil registry).
func TestNilRegistryDisabled(t *testing.T) {
	var reg *Registry
	var rec Recorder = reg
	if rec == nil {
		t.Fatal("typed nil compared equal to nil interface")
	}
	if OrDisabled(rec).Enabled() {
		t.Error("nil *Registry reports enabled")
	}
}
