package obs

import (
	"sync/atomic"
	"time"
)

// Stage is where a session is in its lifecycle. The daemon moves a
// session Queued -> Ingesting -> Draining -> Done (or Failed from any
// stage); the streaming replay loop marks the Ingesting -> Draining
// transition itself, since only it knows when the source hit EOF and
// the final per-owner flushes began.
type Stage int32

const (
	// StageQueued: admitted, waiting for a worker-pool slot.
	StageQueued Stage = iota
	// StageIngesting: streaming trace records through the analyzers.
	StageIngesting
	// StageDraining: source exhausted (or a race stopped it); pending
	// batches are flushing and the verdict is being assembled.
	StageDraining
	// StageDone: terminal, verdict available.
	StageDone
	// StageFailed: terminal, the session aborted (bad trace, quota).
	StageFailed

	numStages
)

// String returns the stage's wire name (stable; the SSE protocol and
// the log schema use it).
func (s Stage) String() string {
	switch s {
	case StageQueued:
		return "queued"
	case StageIngesting:
		return "ingesting"
	case StageDraining:
		return "draining"
	case StageDone:
		return "done"
	case StageFailed:
		return "failed"
	}
	return "unknown"
}

// Terminal reports whether the stage is an end state.
func (s Stage) Terminal() bool { return s == StageDone || s == StageFailed }

// Progress is the lock-free probe a streaming replay publishes through
// and progress watchers read from. The writer (one replay goroutine)
// stores plain atomics on a sampled cadence; any number of readers
// snapshot concurrently. Seq bumps on every publish so a poller can
// tell "changed" from "idle" without comparing fields. A nil *Progress
// is the disabled probe: every method is a no-op and Enabled reports
// false, so the replay loop pays one branch when nobody is watching.
type Progress struct {
	start time.Time
	stage atomic.Int32
	seq   atomic.Uint64

	bytes, records, events, epochs, races, evictions atomic.Int64

	// stageNanos[s] is when stage s was first entered, in nanoseconds
	// since start (0 = never entered; Queued is entered at creation).
	// First-entry-wins, so the stage latency accounting survives
	// duplicate transitions.
	stageNanos [numStages]atomic.Int64
}

// NewProgress returns a probe in StageQueued.
func NewProgress() *Progress {
	p := &Progress{start: time.Now()}
	p.stageNanos[StageQueued].Store(1) // entered now (0 means "never")
	return p
}

// Enabled reports whether the probe records anything.
func (p *Progress) Enabled() bool { return p != nil }

func (p *Progress) now() int64 {
	n := int64(time.Since(p.start))
	if n < 1 {
		n = 1 // 0 is the "never entered" sentinel
	}
	return n
}

// SetStage moves the session to s, records the first entry time, and
// publishes.
func (p *Progress) SetStage(s Stage) {
	if p == nil || s < 0 || s >= numStages {
		return
	}
	p.stage.Store(int32(s))
	p.stageNanos[s].CompareAndSwap(0, p.now())
	p.seq.Add(1)
}

// Stage returns the current stage.
func (p *Progress) Stage() Stage {
	if p == nil {
		return StageQueued
	}
	return Stage(p.stage.Load())
}

// Update publishes the ingest counters: body bytes and trace records
// consumed, access events analysed, epochs completed.
func (p *Progress) Update(bytes, records, events, epochs int64) {
	if p == nil {
		return
	}
	p.bytes.Store(bytes)
	p.records.Store(records)
	p.events.Store(events)
	p.epochs.Store(epochs)
	p.seq.Add(1)
}

// AddRace publishes one detected race.
func (p *Progress) AddRace() {
	if p == nil {
		return
	}
	p.races.Add(1)
	p.seq.Add(1)
}

// AddEviction publishes one cold-analyzer eviction.
func (p *Progress) AddEviction() {
	if p == nil {
		return
	}
	p.evictions.Add(1)
	p.seq.Add(1)
}

// Seq returns the publication counter; a poller re-snapshots only when
// it moved.
func (p *Progress) Seq() uint64 {
	if p == nil {
		return 0
	}
	return p.seq.Load()
}

// StageEntryNanos returns when stage s was first entered, in
// nanoseconds since the probe's creation (0 = never entered).
func (p *Progress) StageEntryNanos(s Stage) int64 {
	if p == nil || s < 0 || s >= numStages {
		return 0
	}
	return p.stageNanos[s].Load()
}

// StageNanos returns how long the session spent in stage s: the gap to
// the next entered stage, or to now for the current stage. 0 when the
// stage was never entered.
func (p *Progress) StageNanos(s Stage) int64 {
	entered := p.StageEntryNanos(s)
	if entered == 0 {
		return 0
	}
	end := int64(0)
	for next := s + 1; next < numStages; next++ {
		if t := p.StageEntryNanos(next); t != 0 {
			end = t
			break
		}
	}
	if end == 0 {
		if Stage(p.stage.Load()).Terminal() {
			return 0 // terminal stages have no duration
		}
		end = p.now()
	}
	d := end - entered
	if d < 0 {
		return 0
	}
	return d
}

// ProgressSnapshot is one consistent-enough reading of the probe — the
// SSE progress event's payload. Fields are read individually (the
// probe is lock-free), so a snapshot taken mid-publish may mix
// adjacent samples; monotonic counters make that harmless.
type ProgressSnapshot struct {
	Stage     string `json:"stage"`
	Bytes     int64  `json:"bytes"`
	Records   int64  `json:"records"`
	Events    int64  `json:"events"`
	Epochs    int64  `json:"epochs"`
	Races     int64  `json:"races"`
	Evictions int64  `json:"evictions,omitempty"`
	ElapsedNs int64  `json:"elapsed_ns"`
	Seq       uint64 `json:"-"`
}

// Snapshot reads the probe.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{Stage: StageQueued.String()}
	}
	return ProgressSnapshot{
		Stage:     Stage(p.stage.Load()).String(),
		Bytes:     p.bytes.Load(),
		Records:   p.records.Load(),
		Events:    p.events.Load(),
		Epochs:    p.epochs.Load(),
		Races:     p.races.Load(),
		Evictions: p.evictions.Load(),
		ElapsedNs: int64(time.Since(p.start)),
		Seq:       p.seq.Load(),
	}
}
