package obs

import (
	"sync"
	"testing"
	"time"
)

// TestProgressLifecycle walks the probe through a session's stages and
// checks the snapshot, publication counter and stage accounting.
func TestProgressLifecycle(t *testing.T) {
	p := NewProgress()
	if got := p.Stage(); got != StageQueued {
		t.Fatalf("new probe stage = %v, want queued", got)
	}
	if p.StageEntryNanos(StageQueued) == 0 {
		t.Fatal("queued entry timestamp missing")
	}
	seq0 := p.Seq()

	p.SetStage(StageIngesting)
	p.Update(1024, 300, 250, 2)
	p.AddRace()
	p.AddEviction()
	if p.Seq() == seq0 {
		t.Fatal("publications did not move Seq")
	}

	snap := p.Snapshot()
	if snap.Stage != "ingesting" || snap.Bytes != 1024 || snap.Records != 300 ||
		snap.Events != 250 || snap.Epochs != 2 || snap.Races != 1 || snap.Evictions != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.ElapsedNs < 0 {
		t.Fatalf("negative elapsed %d", snap.ElapsedNs)
	}

	time.Sleep(time.Millisecond)
	p.SetStage(StageDraining)
	p.SetStage(StageDone)
	if !p.Stage().Terminal() {
		t.Fatal("done is not terminal")
	}
	// Queued and ingesting have closed durations; ingesting spans the
	// sleep, so it must be visibly positive.
	if d := p.StageNanos(StageIngesting); d < int64(time.Millisecond) {
		t.Fatalf("ingesting duration = %d, want >= 1ms", d)
	}
	if p.StageNanos(StageFailed) != 0 {
		t.Fatal("never-entered stage has a duration")
	}

	// First-entry-wins: a duplicate transition must not move the
	// recorded entry time.
	before := p.StageEntryNanos(StageDraining)
	p.SetStage(StageDraining)
	if p.StageEntryNanos(StageDraining) != before {
		t.Fatal("duplicate SetStage rewrote the entry timestamp")
	}
}

// TestProgressNilSafe: the nil probe is the disabled probe — every
// method is a no-op, so the replay loop needs no branches beyond its
// own sampling guard.
func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	if p.Enabled() {
		t.Fatal("nil probe claims enabled")
	}
	p.SetStage(StageDone)
	p.Update(1, 2, 3, 4)
	p.AddRace()
	p.AddEviction()
	if p.Seq() != 0 || p.StageEntryNanos(StageDone) != 0 || p.StageNanos(StageDone) != 0 {
		t.Fatal("nil probe reported state")
	}
	if snap := p.Snapshot(); snap.Stage != "queued" || snap.Records != 0 {
		t.Fatalf("nil snapshot = %+v", snap)
	}
}

// TestProgressConcurrentReaders hammers one writer against many
// snapshotting readers; under -race this proves the probe is lock-free
// safe, and the monotone counters must never run backwards.
func TestProgressConcurrentReaders(t *testing.T) {
	p := NewProgress()
	p.SetStage(StageIngesting)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last ProgressSnapshot
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := p.Snapshot()
				if snap.Records < last.Records || snap.Events < last.Events || snap.Races < last.Races {
					t.Errorf("counters ran backwards: %+v -> %+v", last, snap)
					return
				}
				last = snap
			}
		}()
	}
	for i := int64(1); i <= 5000; i++ {
		p.Update(i*10, i, i*2, i/100)
		if i%500 == 0 {
			p.AddRace()
		}
	}
	p.SetStage(StageDraining)
	p.SetStage(StageDone)
	close(stop)
	wg.Wait()
}

func TestStageStrings(t *testing.T) {
	want := map[Stage]string{
		StageQueued: "queued", StageIngesting: "ingesting", StageDraining: "draining",
		StageDone: "done", StageFailed: "failed", Stage(99): "unknown",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), name)
		}
	}
	if StageQueued.Terminal() || StageIngesting.Terminal() || StageDraining.Terminal() {
		t.Error("non-terminal stage reports terminal")
	}
	if !StageDone.Terminal() || !StageFailed.Terminal() {
		t.Error("terminal stage reports non-terminal")
	}
}
