package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sampleReport() *RunReport {
	reg := NewRegistry()
	reg.Add(EngineReceived, 0, 100)
	reg.Add(EngineReceived, 1, 120)
	reg.Add(EngineOverflows, 1, 2)
	reg.SetMax(StoreNodes, 0, 40)
	reg.Observe(EpochNanos, 0, 1500)
	reg.Observe(EpochNanos, 0, 2500)
	return &RunReport{
		Schema: ReportSchema,
		Source: "run",
		Method: "Our Contribution",
		Ranks:  2,
		Events: 220,
		Epochs: 2,
		Windows: []WindowReport{{
			Name:             "X",
			PerRankMaxNodes:  []int{40, 38},
			TotalMaxNodes:    78,
			Accesses:         220,
			PerRankReceived:  []int64{100, 120},
			PerRankOverflows: []int64{0, 2},
		}},
		EpochLatency: EpochLatencyFromRegistry(reg),
		Metrics:      reg.Snapshot(),
		Races: []RaceReport{{
			Message: "Error when inserting memory access ...",
			Window:  "X",
			Owner:   1,
			Shard:   -1,
			Prev:    AccessReport{Rank: 0, Epoch: 1, Type: "RMA_Write", Lo: 2, Hi: 11, Location: "main.c:3", Stack: "main.body (main.c:3)"},
			Cur:     AccessReport{Rank: 0, Epoch: 1, Type: "Local_Write", Lo: 7, Hi: 7, Location: "main.c:4", Stack: "main.body (main.c:4)"},
		}},
	}
}

// TestReportRoundTrip is the report-schema round-trip test: a report
// survives WriteJSON -> ReadReport (which validates) unchanged.
func TestReportRoundTrip(t *testing.T) {
	rep := sampleReport()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Errorf("round trip changed the report:\n before %+v\n after  %+v", rep, back)
	}
}

func TestEpochLatencyFromRegistry(t *testing.T) {
	rep := sampleReport()
	if len(rep.EpochLatency) != 1 {
		t.Fatalf("epoch latency entries = %d, want 1", len(rep.EpochLatency))
	}
	el := rep.EpochLatency[0]
	if el.Label != 0 || el.Count != 2 || el.MeanNanos != 2000 || el.MaxNanos != 2500 {
		t.Errorf("bad latency summary: %+v", el)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*RunReport)
	}{
		{"wrong schema", func(r *RunReport) { r.Schema = "rmarace/run-report/v0" }},
		{"unknown metric", func(r *RunReport) { r.Metrics[0].Name = "bogus" }},
		{"kind mismatch", func(r *RunReport) { r.Metrics[0].Kind = "histogram" }},
		{"empty series", func(r *RunReport) { r.Metrics[0].Series = nil }},
		{"negative label", func(r *RunReport) { r.Metrics[0].Series[0].Label = -1 }},
		{"race without message", func(r *RunReport) { r.Races[0].Message = "" }},
		{"race bad shard", func(r *RunReport) { r.Races[0].Shard = -2 }},
		{"race missing type", func(r *RunReport) { r.Races[0].Cur.Type = "" }},
		{"anonymous window", func(r *RunReport) { r.Windows[0].Name = "" }},
	}
	for _, c := range cases {
		rep := sampleReport()
		c.mutate(rep)
		if err := rep.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a bad report", c.name)
		}
	}
	if err := sampleReport().Validate(); err != nil {
		t.Errorf("valid report rejected: %v", err)
	}
}

func TestReadReportRejectsUnknownFields(t *testing.T) {
	_, err := ReadReport(strings.NewReader(`{"schema":"` + ReportSchema + `","bogus_field":1}`))
	if err == nil {
		t.Error("unknown top-level field accepted")
	}
}

func TestSummaryMentionsKeyFacts(t *testing.T) {
	var buf bytes.Buffer
	sampleReport().Summary(&buf)
	out := buf.String()
	for _, want := range []string{
		"method=Our Contribution",
		"window X",
		"received per rank",
		"epoch latency rank 0",
		"engine_received",
		"RACE 0",
		"owner=1 shard=-1",
		"stack: main.body (main.c:3)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
