package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// histBuckets is the number of power-of-two histogram buckets: bucket i
// holds samples v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i).
// 40 buckets cover 1ns to ~9 minutes of latency (or any count up to
// ~5e11) without clamping in practice.
const histBuckets = 40

// bucketOf maps a sample to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// BucketLow returns the inclusive lower bound of bucket i, for report
// rendering (bucket 0 holds non-positive samples).
func BucketLow(i int) int64 {
	if i <= 0 {
		return 0
	}
	return 1 << (i - 1)
}

// slot is the atomic state of one (metric, label) series. One slot
// type serves all kinds: counters and gauges use val; high-water marks
// use max; histograms use val (count), sum, max and buckets.
type slot struct {
	val     atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets *[histBuckets]atomic.Int64 // histograms only
}

func casMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur {
			return
		}
		if a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Registry is the concrete Recorder: a fixed array of per-metric
// series, each a copy-on-write slice of atomic slots indexed by label.
// Updates are lock-free once a label exists; growing a series for a
// new label takes the registry lock and allocates, which happens a
// bounded number of times per run (labels are rank/shard/target
// indices).
type Registry struct {
	mu     sync.Mutex
	series [NumMetrics]atomic.Pointer[[]*slot]
}

// NewRegistry returns an empty recording registry.
func NewRegistry() *Registry { return &Registry{} }

// Enabled implements Recorder. A nil *Registry reports disabled, so a
// typed-nil pointer passed through the Recorder interface (which
// defeats OrDisabled's nil check) stays inert instead of crashing the
// first recorded update.
func (r *Registry) Enabled() bool { return r != nil }

// slot returns the (m, label) slot, growing the series on first use.
func (r *Registry) slot(m Metric, label int) *slot {
	if m >= NumMetrics {
		m = NumMetrics - 1
	}
	if label < 0 {
		label = 0
	}
	if p := r.series[m].Load(); p != nil && label < len(*p) {
		return (*p)[label]
	}
	return r.grow(m, label)
}

// grow extends metric m's series to cover label. Existing slots keep
// their identity (the slice holds pointers), so concurrent updaters of
// old labels are unaffected by the copy.
func (r *Registry) grow(m Metric, label int) *slot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var cur []*slot
	if p := r.series[m].Load(); p != nil {
		cur = *p
	}
	if label < len(cur) { // raced with another grower
		return cur[label]
	}
	next := make([]*slot, label+1)
	copy(next, cur)
	hist := m.Kind() == KindHistogram
	for i := len(cur); i < len(next); i++ {
		s := &slot{}
		if hist {
			s.buckets = new([histBuckets]atomic.Int64)
		}
		next[i] = s
	}
	r.series[m].Store(&next)
	return next[label]
}

// Add implements Recorder.
func (r *Registry) Add(m Metric, label int, delta int64) {
	r.slot(m, label).val.Add(delta)
}

// Set implements Recorder.
func (r *Registry) Set(m Metric, label int, v int64) {
	r.slot(m, label).val.Store(v)
}

// SetMax implements Recorder.
func (r *Registry) SetMax(m Metric, label int, v int64) {
	casMax(&r.slot(m, label).max, v)
}

// Observe implements Recorder.
func (r *Registry) Observe(m Metric, label int, v int64) {
	s := r.slot(m, label)
	s.val.Add(1)
	s.sum.Add(v)
	casMax(&s.max, v)
	if s.buckets != nil {
		s.buckets[bucketOf(v)].Add(1)
	}
}

// Value returns the current scalar of (m, label): the sum for counters
// and gauges, the high-water mark for KindHighWater, the sample count
// for histograms. Missing labels read as zero.
func (r *Registry) Value(m Metric, label int) int64 {
	if m >= NumMetrics || label < 0 {
		return 0
	}
	p := r.series[m].Load()
	if p == nil || label >= len(*p) {
		return 0
	}
	s := (*p)[label]
	if m.Kind() == KindHighWater {
		return s.max.Load()
	}
	return s.val.Load()
}

// Total sums Value over every recorded label of m.
func (r *Registry) Total(m Metric) int64 {
	if m >= NumMetrics {
		return 0
	}
	p := r.series[m].Load()
	if p == nil {
		return 0
	}
	var total int64
	for label := range *p {
		total += r.Value(m, label)
	}
	return total
}

// Snapshot renders every non-empty series into the report schema, in
// metric-enum order with ascending labels — deterministic output for
// diffing and golden tests.
func (r *Registry) Snapshot() []MetricSnapshot {
	var out []MetricSnapshot
	for m := Metric(0); m < NumMetrics; m++ {
		p := r.series[m].Load()
		if p == nil {
			continue
		}
		snap := MetricSnapshot{Name: m.Name(), Kind: m.Kind().String(), LabelDim: m.LabelDim()}
		for label, s := range *p {
			pt := SeriesPoint{Label: label}
			switch m.Kind() {
			case KindHighWater:
				pt.Value = s.max.Load()
			case KindHistogram:
				pt.Value = s.val.Load()
				pt.Sum = s.sum.Load()
				pt.Max = s.max.Load()
				if s.buckets != nil {
					for i := range s.buckets {
						if n := s.buckets[i].Load(); n > 0 {
							pt.Buckets = append(pt.Buckets, BucketCount{Low: BucketLow(i), Count: n})
						}
					}
				}
			default:
				pt.Value = s.val.Load()
			}
			if pt.Value == 0 && pt.Sum == 0 && pt.Max == 0 && len(pt.Buckets) == 0 {
				continue // label never recorded anything
			}
			snap.Series = append(snap.Series, pt)
		}
		if len(snap.Series) > 0 {
			out = append(out, snap)
		}
	}
	return out
}

var _ Recorder = (*Registry)(nil)
