package mpi

import (
	"sync"
	"testing"
	"time"
)

// TestStepBarrierSerialisesSchedule: three goroutines append their rank
// at every admitted step; the observed order must equal the schedule
// sequence, whatever the Go scheduler does.
func TestStepBarrierSerialisesSchedule(t *testing.T) {
	seq := []int{0, 1, 0, 2, 2, 1, 0, 2, 1, 0}
	counts := make([]int, 3)
	for _, r := range seq {
		counts[r]++
	}
	b := NewStepBarrier(3, seq, nil)
	var mu sync.Mutex
	var got []int
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer b.Leave(rank)
			for i := 0; i < counts[rank]; i++ {
				if !b.Step(rank) {
					t.Errorf("rank %d: step %d refused", rank, i)
					return
				}
				mu.Lock()
				got = append(got, rank)
				mu.Unlock()
			}
		}(r)
	}
	wg.Wait()
	if len(got) != len(seq) {
		t.Fatalf("got %d steps, want %d", len(got), len(seq))
	}
	for i := range seq {
		if got[i] != seq[i] {
			t.Fatalf("step %d ran rank %d, schedule says %d (full: %v)", i, got[i], seq[i], got)
		}
	}
}

// TestStepBarrierPassReleasesClock: a rank that passes before a
// collective lets the other rank take its later steps.
func TestStepBarrierPassReleasesClock(t *testing.T) {
	b := NewStepBarrier(2, []int{0, 1, 1}, nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if !b.Step(1) || !b.Step(1) {
			t.Error("rank 1 refused")
		}
		b.Leave(1)
	}()
	if !b.Step(0) {
		t.Fatal("rank 0 refused")
	}
	b.Pass(0) // entering a "collective"; rank 1 must be able to run
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("rank 1 never ran after Pass")
	}
	b.Leave(0)
}

// TestStepBarrierLeaveSkipsEntries: a rank erroring out early must not
// stall the survivors' schedule entries.
func TestStepBarrierLeaveSkipsEntries(t *testing.T) {
	b := NewStepBarrier(2, []int{0, 1, 0, 0, 1}, nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if !b.Step(1) {
			t.Error("rank 1 first step refused")
		}
		if !b.Step(1) {
			t.Error("rank 1 second step refused")
		}
		b.Leave(1)
	}()
	if !b.Step(0) {
		t.Fatal("rank 0 refused")
	}
	b.Leave(0) // rank 0 "errors out" with two entries still scheduled
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("rank 1 stalled behind a departed rank's entries")
	}
}

// TestStepBarrierAbortUnblocks: closing the abort channel makes blocked
// Step calls return false.
func TestStepBarrierAbortUnblocks(t *testing.T) {
	abort := make(chan struct{})
	b := NewStepBarrier(2, []int{0, 1}, abort)
	done := make(chan bool, 1)
	go func() {
		done <- b.Step(1) // not rank 1's turn; blocks
	}()
	close(abort)
	select {
	case ok := <-done:
		if ok {
			t.Fatal("aborted Step returned true")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Step still blocked after abort")
	}
}

// TestStepBarrierExhaustedRefuses: requesting more steps than scheduled
// returns false instead of deadlocking.
func TestStepBarrierExhaustedRefuses(t *testing.T) {
	b := NewStepBarrier(1, []int{0}, nil)
	if !b.Step(0) {
		t.Fatal("scheduled step refused")
	}
	if b.Step(0) {
		t.Fatal("unscheduled step admitted")
	}
}
