package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func TestGather(t *testing.T) {
	const n = 5
	w := NewWorld(n)
	err := w.Run(func(p *Proc) error {
		parts, err := p.Gather(2, []byte{byte(p.Rank()), byte(p.Rank() * 2)})
		if err != nil {
			return err
		}
		if p.Rank() != 2 {
			if parts != nil {
				return fmt.Errorf("non-root got %v", parts)
			}
			return nil
		}
		if len(parts) != n {
			return fmt.Errorf("root got %d parts", len(parts))
		}
		for r, part := range parts {
			if !bytes.Equal(part, []byte{byte(r), byte(r * 2)}) {
				return fmt.Errorf("part %d = %v", r, part)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	const n = 4
	w := NewWorld(n)
	err := w.Run(func(p *Proc) error {
		parts, err := p.Allgather([]byte{byte(p.Rank() + 10)})
		if err != nil {
			return err
		}
		for r, part := range parts {
			if len(part) != 1 || part[0] != byte(r+10) {
				return fmt.Errorf("rank %d saw part %d = %v", p.Rank(), r, part)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatter(t *testing.T) {
	const n = 3
	w := NewWorld(n)
	err := w.Run(func(p *Proc) error {
		var chunks [][]byte
		if p.Rank() == 1 {
			chunks = [][]byte{{0, 0}, {1, 1}, {2, 2}}
		}
		mine, err := p.Scatter(1, chunks)
		if err != nil {
			return err
		}
		if !bytes.Equal(mine, []byte{byte(p.Rank()), byte(p.Rank())}) {
			return fmt.Errorf("rank %d got %v", p.Rank(), mine)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterValidation(t *testing.T) {
	// A root-side argument error is local: the root must abort (as an
	// MPI program would) to release the peers already in the collective.
	errBad := errors.New("scatter rejected")
	w := NewWorld(2)
	err := w.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			if _, err := p.Scatter(0, [][]byte{{1}}); err == nil {
				return fmt.Errorf("bad chunk count accepted")
			}
			return errBad
		}
		_, err := p.Scatter(0, nil)
		return err
	})
	if !errors.Is(err, errBad) {
		t.Fatalf("err = %v, want the root's abort", err)
	}
}

func TestGatherLengthMismatchAborts(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(p *Proc) error {
		_, err := p.Gather(0, make([]byte, p.Rank()+1))
		return err
	})
	if err == nil {
		t.Fatal("unequal gather contributions must abort")
	}
}
