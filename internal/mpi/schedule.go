package mpi

import "sync"

// StepBarrier is a deterministic schedule controller: a virtual-clock
// step barrier that serialises chosen program points of an SPMD run
// into one explicit global order. The controller is handed the complete
// schedule up front — a sequence of rank ids, one per step — and
// advances a virtual clock over it: the rank named by the current
// sequence entry is admitted, runs its step, and implicitly passes the
// clock on at its next StepBarrier call.
//
// The fuzzer uses it to replay one generated program under many
// permuted goroutine interleavings: the schedule sequence is a seeded
// interleaving of the per-rank operation streams, so two runs with the
// same sequence perform their instrumented operations in the same
// global order regardless of how the Go scheduler dispatches the rank
// goroutines — exactly the determinism Go's own scheduler does not give
// (and whose absence is what hides interleaving-dependent detector
// bugs).
//
// Protocol, per rank goroutine:
//
//   - Step(rank) before every scheduled operation. It blocks until the
//     virtual clock reaches an entry for rank and every earlier entry's
//     step has completed, then returns true holding the clock.
//   - Pass(rank) before any collective or blocking synchronisation
//     (Barrier, UnlockAll, PSCW handshakes): it releases the clock
//     without consuming an entry so the other ranks can proceed into
//     the collective too. Without it the clock holder would block
//     inside the collective and deadlock the schedule.
//   - Leave(rank) when the rank is done (normally or on error): its
//     remaining sequence entries are skipped so survivors don't wait
//     for steps that will never be requested. Safe to defer.
//
// Aborting the world (or closing the channel given to NewStepBarrier)
// unblocks every waiter; Step then returns false and the caller should
// unwind. A rank's own program order is never changed — the sequence
// must be an interleaving of the per-rank request streams, which the
// fuzzer guarantees by construction.
type StepBarrier struct {
	mu   sync.Mutex
	cond *sync.Cond
	seq  []int
	// cursor indexes the next sequence entry to admit; holder is the
	// rank currently holding the virtual clock (-1 when free).
	cursor int
	holder int
	left   []bool
	dead   bool
}

// NewStepBarrier returns a controller for the given schedule sequence.
// aborted, when non-nil, unblocks all waiters when closed (pass
// World.Aborted()).
func NewStepBarrier(ranks int, seq []int, aborted <-chan struct{}) *StepBarrier {
	b := &StepBarrier{seq: seq, holder: -1, left: make([]bool, ranks)}
	b.cond = sync.NewCond(&b.mu)
	if aborted != nil {
		go func() {
			<-aborted
			b.mu.Lock()
			b.dead = true
			b.mu.Unlock()
			b.cond.Broadcast()
		}()
	}
	return b
}

// release gives up the clock if rank holds it and consumes its entry.
// Callers hold b.mu.
func (b *StepBarrier) release(rank int) {
	if b.holder == rank {
		b.holder = -1
		b.cursor++
		b.skipDead()
		b.cond.Broadcast()
	}
}

// skipDead advances the cursor past entries of ranks that left. Callers
// hold b.mu.
func (b *StepBarrier) skipDead() {
	for b.cursor < len(b.seq) && b.left[b.seq[b.cursor]] {
		b.cursor++
	}
}

// Step blocks until it is rank's turn and returns true holding the
// virtual clock. It returns false when the run aborted or the schedule
// is exhausted (more steps requested than scheduled — a programming
// error in the schedule's construction, surfaced gently so the rank
// can unwind).
func (b *StepBarrier) Step(rank int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.release(rank) // finish the previous step, if any
	for {
		if b.dead {
			return false
		}
		if b.holder == -1 {
			if b.cursor >= len(b.seq) {
				return false
			}
			if b.seq[b.cursor] == rank {
				b.holder = rank
				return true
			}
		}
		b.cond.Wait()
	}
}

// Pass releases the virtual clock before rank enters a collective or
// otherwise blocks outside the schedule. A no-op if rank does not hold
// the clock.
func (b *StepBarrier) Pass(rank int) {
	b.mu.Lock()
	b.release(rank)
	b.mu.Unlock()
}

// Leave retires rank from the schedule: the clock is released and all
// of rank's remaining entries are skipped.
func (b *StepBarrier) Leave(rank int) {
	b.mu.Lock()
	b.release(rank)
	if !b.left[rank] {
		b.left[rank] = true
		b.skipDead()
		b.cond.Broadcast()
	}
	b.mu.Unlock()
}
