// Package mpi is an in-process message-passing runtime standing in for
// the MPI library of the paper's experiments. Ranks are goroutines;
// point-to-point messages travel over per-rank mailboxes; collectives
// (Barrier, Reduce, Allreduce, Bcast) are served by a per-world
// coordinator; MPI_Abort is modelled by a world-wide abort that unblocks
// every pending operation.
//
// The package deliberately exposes only what the reproduced system
// needs: SPMD execution, tagged Send/Recv, integer-vector collectives
// and a per-rank virtual-address allocator (each simulated process has
// its own address space, as real MPI processes do). One-sided
// communication lives one layer up, in package internal/rma, which is
// where the paper's PMPI instrumentation sits too.
package mpi

import (
	"errors"
	"fmt"
	"sync"
)

// ErrAborted is returned by every blocked operation once the world has
// been aborted (the MPI_Abort model).
var ErrAborted = errors.New("mpi: world aborted")

// Message is a tagged point-to-point message.
type Message struct {
	Src, Tag int
	Data     []byte
}

// Op is a reduction operator for integer-vector collectives.
type Op int

// Reduction operators.
const (
	OpSum Op = iota
	OpMax
	OpMin
)

func (o Op) apply(dst, src []int64) {
	for i := range dst {
		switch o {
		case OpSum:
			dst[i] += src[i]
		case OpMax:
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		case OpMin:
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		}
	}
}

const (
	collBarrier = iota
	collAllreduce
	collReduce
	collBcast
)

type collReq struct {
	kind  int
	rank  int
	root  int
	op    Op
	vals  []int64
	data  []byte
	reply chan collResp
}

type collResp struct {
	vals []int64
	data []byte
	err  error
}

// World is one simulated MPI job. Create it with NewWorld and execute
// the SPMD body with Run.
type World struct {
	n       int
	inboxes []chan Message
	collCh  chan collReq

	abortOnce sync.Once
	abortCh   chan struct{}
	abortMu   sync.Mutex
	abortErr  error

	doneOnce sync.Once
	doneCh   chan struct{}

	addrMu   sync.Mutex
	nextAddr []uint64
}

// NewWorld creates a world of n ranks and starts its collective
// coordinator.
func NewWorld(n int) *World {
	if n <= 0 {
		panic("mpi: world size must be positive")
	}
	w := &World{
		n:        n,
		inboxes:  make([]chan Message, n),
		collCh:   make(chan collReq, n),
		abortCh:  make(chan struct{}),
		doneCh:   make(chan struct{}),
		nextAddr: make([]uint64, n),
	}
	for i := range w.inboxes {
		w.inboxes[i] = make(chan Message, 4096)
	}
	for i := range w.nextAddr {
		// Give each rank its own distinct virtual address space start;
		// addresses of different ranks never collide, like real
		// processes.
		w.nextAddr[i] = 1 << 20
	}
	go w.coordinate()
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// Abort terminates the world with err; the first call wins. All blocked
// operations return ErrAborted.
func (w *World) Abort(err error) {
	w.abortOnce.Do(func() {
		w.abortMu.Lock()
		w.abortErr = err
		w.abortMu.Unlock()
		close(w.abortCh)
	})
}

// AbortErr returns the error the world was aborted with, or nil.
func (w *World) AbortErr() error {
	w.abortMu.Lock()
	defer w.abortMu.Unlock()
	return w.abortErr
}

// Aborted returns a channel closed when the world aborts.
func (w *World) Aborted() <-chan struct{} { return w.abortCh }

// Run executes body once per rank, each in its own goroutine, and waits
// for all of them. If any body returns an error the world is aborted
// and Run returns that error; if the world was aborted by other means
// Run returns the abort reason.
func (w *World) Run(body func(p *Proc) error) error {
	var wg sync.WaitGroup
	errs := make([]error, w.n)
	for r := 0; r < w.n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					w.Abort(fmt.Errorf("mpi: rank %d panicked: %v", rank, rec))
				}
			}()
			if err := body(&Proc{w: w, rank: rank}); err != nil {
				errs[rank] = err
				w.Abort(err)
			}
		}(r)
	}
	wg.Wait()
	// Release the coordinator so a finished world can be collected.
	w.doneOnce.Do(func() { close(w.doneCh) })
	if err := w.AbortErr(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// coordinate serves collectives: it gathers one request per rank,
// checks they agree on the operation, computes the result and replies.
func (w *World) coordinate() {
	pending := make([]collReq, 0, w.n)
	for {
		select {
		case <-w.doneCh:
			return
		case <-w.abortCh:
			// Drain forever, failing every request, so late callers
			// unblock.
			for {
				select {
				case req := <-w.collCh:
					req.reply <- collResp{err: ErrAborted}
				default:
					return
				}
			}
		case req := <-w.collCh:
			pending = append(pending, req)
			if len(pending) < w.n {
				continue
			}
			w.serveCollective(pending)
			pending = pending[:0]
		}
	}
}

func (w *World) serveCollective(reqs []collReq) {
	first := reqs[0]
	for _, r := range reqs[1:] {
		if r.kind != first.kind || r.root != first.root || r.op != first.op {
			err := fmt.Errorf("mpi: collective mismatch: rank %d called kind=%d root=%d, rank %d called kind=%d root=%d",
				first.rank, first.kind, first.root, r.rank, r.kind, r.root)
			w.Abort(err)
			for _, rr := range reqs {
				rr.reply <- collResp{err: err}
			}
			return
		}
	}
	if w.serveGatherFamily(reqs) {
		return
	}
	switch first.kind {
	case collBarrier:
		for _, r := range reqs {
			r.reply <- collResp{}
		}
	case collAllreduce, collReduce:
		acc := make([]int64, len(first.vals))
		copy(acc, first.vals)
		for _, r := range reqs[1:] {
			first.op.apply(acc, r.vals)
		}
		for _, r := range reqs {
			if first.kind == collReduce && r.rank != first.root {
				r.reply <- collResp{}
				continue
			}
			out := make([]int64, len(acc))
			copy(out, acc)
			r.reply <- collResp{vals: out}
		}
	case collBcast:
		var payload []byte
		for _, r := range reqs {
			if r.rank == first.root {
				payload = r.data
			}
		}
		for _, r := range reqs {
			out := make([]byte, len(payload))
			copy(out, payload)
			r.reply <- collResp{data: out}
		}
	}
}

// Proc is one rank's handle on the world.
type Proc struct {
	w       *World
	rank    int
	pending []Message
}

// Rank returns this process's rank.
func (p *Proc) Rank() int { return p.rank }

// Size returns the world size.
func (p *Proc) Size() int { return p.w.n }

// World returns the underlying world.
func (p *Proc) World() *World { return p.w }

// Send delivers data to dst with the given tag. It blocks only when
// dst's mailbox is full and returns ErrAborted if the world aborts.
func (p *Proc) Send(dst, tag int, data []byte) error {
	if dst < 0 || dst >= p.w.n {
		return fmt.Errorf("mpi: send to invalid rank %d", dst)
	}
	msg := Message{Src: p.rank, Tag: tag, Data: data}
	select {
	case p.w.inboxes[dst] <- msg:
		return nil
	case <-p.w.abortCh:
		return ErrAborted
	}
}

// Recv returns the next message from src with the given tag, buffering
// non-matching messages. src == AnySource matches any sender.
func (p *Proc) Recv(src, tag int) (Message, error) {
	for i, m := range p.pending {
		if matches(m, src, tag) {
			p.pending = append(p.pending[:i], p.pending[i+1:]...)
			return m, nil
		}
	}
	for {
		select {
		case m := <-p.w.inboxes[p.rank]:
			if matches(m, src, tag) {
				return m, nil
			}
			p.pending = append(p.pending, m)
		case <-p.w.abortCh:
			return Message{}, ErrAborted
		}
	}
}

// AnySource matches any sending rank in Recv.
const AnySource = -1

func matches(m Message, src, tag int) bool {
	return (src == AnySource || m.Src == src) && m.Tag == tag
}

// Barrier blocks until every rank has entered it.
func (p *Proc) Barrier() error {
	_, _, err := p.collective(collReq{kind: collBarrier, rank: p.rank})
	return err
}

// Allreduce combines vals element-wise across all ranks with op and
// returns the result to every rank.
func (p *Proc) Allreduce(vals []int64, op Op) ([]int64, error) {
	v, _, err := p.collective(collReq{kind: collAllreduce, rank: p.rank, op: op, vals: vals})
	return v, err
}

// Reduce combines vals across all ranks; only root receives the result
// (others get nil).
func (p *Proc) Reduce(root int, vals []int64, op Op) ([]int64, error) {
	v, _, err := p.collective(collReq{kind: collReduce, rank: p.rank, root: root, op: op, vals: vals})
	return v, err
}

// Bcast distributes root's data to every rank.
func (p *Proc) Bcast(root int, data []byte) ([]byte, error) {
	_, d, err := p.collective(collReq{kind: collBcast, rank: p.rank, root: root, data: data})
	return d, err
}

func (p *Proc) collective(req collReq) ([]int64, []byte, error) {
	req.reply = make(chan collResp, 1)
	select {
	case p.w.collCh <- req:
	case <-p.w.abortCh:
		return nil, nil, ErrAborted
	}
	select {
	case resp := <-req.reply:
		return resp.vals, resp.data, resp.err
	case <-p.w.abortCh:
		return nil, nil, ErrAborted
	}
}

// AllocAddr reserves size bytes of this rank's virtual address space and
// returns the base address. Allocations are aligned to 64 bytes and
// separated by a guard gap so that distinct buffers never share a
// shadow-memory granule.
func (p *Proc) AllocAddr(size uint64) uint64 {
	const align, gap = 64, 128
	w := p.w
	w.addrMu.Lock()
	defer w.addrMu.Unlock()
	base := (w.nextAddr[p.rank] + align - 1) &^ (align - 1)
	w.nextAddr[p.rank] = base + size + gap
	return base
}
