package mpi

import "fmt"

const (
	collGather = iota + 100 // offset away from the base collective kinds
	collAllgather
	collScatter
)

// Gather collects each rank's data at root, concatenated in rank order.
// Non-root ranks receive nil. All contributions must have equal length.
func (p *Proc) Gather(root int, data []byte) ([][]byte, error) {
	v, d, err := p.collective(collReq{kind: collGather, rank: p.rank, root: root, data: data})
	_ = v
	if err != nil {
		return nil, err
	}
	if p.rank != root {
		return nil, nil
	}
	return splitEqual(d, p.w.n)
}

// Allgather collects each rank's equal-length data at every rank.
func (p *Proc) Allgather(data []byte) ([][]byte, error) {
	_, d, err := p.collective(collReq{kind: collAllgather, rank: p.rank, data: data})
	if err != nil {
		return nil, err
	}
	return splitEqual(d, p.w.n)
}

// Scatter distributes root's per-rank chunks: rank i receives chunks[i].
// Non-root ranks pass nil chunks. All chunks must have equal length.
func (p *Proc) Scatter(root int, chunks [][]byte) ([]byte, error) {
	var flat []byte
	if p.rank == root {
		if len(chunks) != p.w.n {
			return nil, fmt.Errorf("mpi: scatter needs %d chunks, got %d", p.w.n, len(chunks))
		}
		size := len(chunks[0])
		for i, c := range chunks {
			if len(c) != size {
				return nil, fmt.Errorf("mpi: scatter chunk %d has length %d, want %d", i, len(c), size)
			}
			flat = append(flat, c...)
		}
	}
	_, d, err := p.collective(collReq{kind: collScatter, rank: p.rank, root: root, data: flat})
	if err != nil {
		return nil, err
	}
	parts, err := splitEqual(d, p.w.n)
	if err != nil {
		return nil, err
	}
	return parts[p.rank], nil
}

func splitEqual(flat []byte, n int) ([][]byte, error) {
	if len(flat)%n != 0 {
		return nil, fmt.Errorf("mpi: cannot split %d bytes into %d equal parts", len(flat), n)
	}
	size := len(flat) / n
	out := make([][]byte, n)
	for i := range out {
		out[i] = flat[i*size : (i+1)*size]
	}
	return out, nil
}

// serveGatherFamily handles the gather-style collectives; called from
// serveCollective.
func (w *World) serveGatherFamily(reqs []collReq) bool {
	first := reqs[0]
	switch first.kind {
	case collGather, collAllgather:
		size := len(first.data)
		flat := make([]byte, 0, size*w.n)
		// Concatenate in rank order, validating equal lengths.
		byRank := make([][]byte, w.n)
		for _, r := range reqs {
			byRank[r.rank] = r.data
		}
		for rank, d := range byRank {
			if len(d) != size {
				err := fmt.Errorf("mpi: gather contribution of rank %d has length %d, want %d", rank, len(d), size)
				w.Abort(err)
				for _, r := range reqs {
					r.reply <- collResp{err: err}
				}
				return true
			}
			flat = append(flat, d...)
		}
		for _, r := range reqs {
			if first.kind == collGather && r.rank != first.root {
				r.reply <- collResp{}
				continue
			}
			out := make([]byte, len(flat))
			copy(out, flat)
			r.reply <- collResp{data: out}
		}
		return true
	case collScatter:
		var flat []byte
		for _, r := range reqs {
			if r.rank == first.root {
				flat = r.data
			}
		}
		for _, r := range reqs {
			out := make([]byte, len(flat))
			copy(out, flat)
			r.reply <- collResp{data: out}
		}
		return true
	}
	return false
}
