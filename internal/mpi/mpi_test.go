package mpi

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunExecutesEveryRank(t *testing.T) {
	var count int64
	w := NewWorld(8)
	err := w.Run(func(p *Proc) error {
		atomic.AddInt64(&count, 1)
		if p.Size() != 8 {
			return fmt.Errorf("size = %d", p.Size())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 8 {
		t.Fatalf("ran %d ranks", count)
	}
}

func TestNewWorldValidatesSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWorld(0) must panic")
		}
	}()
	NewWorld(0)
}

func TestSendRecv(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(p *Proc) error {
		switch p.Rank() {
		case 0:
			return p.Send(1, 7, []byte("hello"))
		case 1:
			m, err := p.Recv(0, 7)
			if err != nil {
				return err
			}
			if string(m.Data) != "hello" || m.Src != 0 {
				return fmt.Errorf("got %+v", m)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTagMatchingBuffersOthers(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			if err := p.Send(1, 1, []byte("first")); err != nil {
				return err
			}
			return p.Send(1, 2, []byte("second"))
		}
		// Receive out of order: tag 2 first.
		m2, err := p.Recv(0, 2)
		if err != nil {
			return err
		}
		m1, err := p.Recv(0, 1)
		if err != nil {
			return err
		}
		if string(m2.Data) != "second" || string(m1.Data) != "first" {
			return fmt.Errorf("wrong matching: %q %q", m2.Data, m1.Data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvAnySource(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(p *Proc) error {
		if p.Rank() != 0 {
			return p.Send(0, 5, []byte{byte(p.Rank())})
		}
		seen := map[byte]bool{}
		for i := 0; i < 2; i++ {
			m, err := p.Recv(AnySource, 5)
			if err != nil {
				return err
			}
			seen[m.Data[0]] = true
		}
		if !seen[1] || !seen[2] {
			return fmt.Errorf("seen = %v", seen)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdersPhases(t *testing.T) {
	const n = 16
	w := NewWorld(n)
	var phase1 int64
	err := w.Run(func(p *Proc) error {
		atomic.AddInt64(&phase1, 1)
		if err := p.Barrier(); err != nil {
			return err
		}
		if got := atomic.LoadInt64(&phase1); got != n {
			return fmt.Errorf("rank %d passed barrier with phase1=%d", p.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSum(t *testing.T) {
	const n = 8
	w := NewWorld(n)
	err := w.Run(func(p *Proc) error {
		got, err := p.Allreduce([]int64{int64(p.Rank()), 1}, OpSum)
		if err != nil {
			return err
		}
		if got[0] != n*(n-1)/2 || got[1] != n {
			return fmt.Errorf("allreduce = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	const n = 5
	w := NewWorld(n)
	err := w.Run(func(p *Proc) error {
		mx, err := p.Allreduce([]int64{int64(p.Rank())}, OpMax)
		if err != nil {
			return err
		}
		if mx[0] != n-1 {
			return fmt.Errorf("max = %v", mx)
		}
		mn, err := p.Allreduce([]int64{int64(p.Rank())}, OpMin)
		if err != nil {
			return err
		}
		if mn[0] != 0 {
			return fmt.Errorf("min = %v", mn)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceOnlyRoot(t *testing.T) {
	const n = 4
	w := NewWorld(n)
	err := w.Run(func(p *Proc) error {
		got, err := p.Reduce(2, []int64{1}, OpSum)
		if err != nil {
			return err
		}
		if p.Rank() == 2 {
			if got == nil || got[0] != n {
				return fmt.Errorf("root got %v", got)
			}
		} else if got != nil {
			return fmt.Errorf("non-root got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	w := NewWorld(6)
	err := w.Run(func(p *Proc) error {
		var payload []byte
		if p.Rank() == 3 {
			payload = []byte("root-data")
		}
		got, err := p.Bcast(3, payload)
		if err != nil {
			return err
		}
		if string(got) != "root-data" {
			return fmt.Errorf("rank %d bcast = %q", p.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveMismatchAborts(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			return p.Barrier()
		}
		_, err := p.Allreduce([]int64{1}, OpSum)
		return err
	})
	if err == nil {
		t.Fatal("mismatched collectives must abort the world")
	}
}

func TestAbortUnblocksEverything(t *testing.T) {
	w := NewWorld(3)
	boom := errors.New("boom")
	start := time.Now()
	err := w.Run(func(p *Proc) error {
		switch p.Rank() {
		case 0:
			time.Sleep(10 * time.Millisecond)
			return boom
		case 1:
			_, err := p.Recv(0, 99) // never sent
			return err
		default:
			return p.Barrier() // never completed
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("abort did not unblock promptly")
	}
}

func TestRunReportsPanicsAsAbort(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(p *Proc) error {
		if p.Rank() == 1 {
			panic("kaboom")
		}
		return p.Barrier()
	})
	if err == nil {
		t.Fatal("panic in a rank must abort the world")
	}
}

func TestSendInvalidRank(t *testing.T) {
	w := NewWorld(1)
	err := w.Run(func(p *Proc) error {
		if err := p.Send(5, 0, nil); err == nil {
			return errors.New("send to invalid rank succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllocAddrDisjointPerRankAndAligned(t *testing.T) {
	w := NewWorld(2)
	type region struct{ base, size uint64 }
	regions := make([][]region, 2)
	err := w.Run(func(p *Proc) error {
		for i := 0; i < 10; i++ {
			size := uint64(100 + i)
			base := p.AllocAddr(size)
			if base%64 != 0 {
				return fmt.Errorf("unaligned base %d", base)
			}
			regions[p.Rank()] = append(regions[p.Rank()], region{base, size})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		rs := regions[r]
		for i := 1; i < len(rs); i++ {
			prevEnd := rs[i-1].base + rs[i-1].size
			if rs[i].base < prevEnd+64 {
				t.Fatalf("rank %d allocations too close: %v then %v", r, rs[i-1], rs[i])
			}
		}
	}
}

func TestManyRanksStress(t *testing.T) {
	const n = 128
	w := NewWorld(n)
	err := w.Run(func(p *Proc) error {
		// Ring exchange plus collectives.
		next := (p.Rank() + 1) % n
		prev := (p.Rank() - 1 + n) % n
		if err := p.Send(next, 1, []byte{byte(p.Rank())}); err != nil {
			return err
		}
		m, err := p.Recv(prev, 1)
		if err != nil {
			return err
		}
		if int(m.Data[0]) != prev {
			return fmt.Errorf("ring got %d want %d", m.Data[0], prev)
		}
		sum, err := p.Allreduce([]int64{1}, OpSum)
		if err != nil {
			return err
		}
		if sum[0] != n {
			return fmt.Errorf("sum = %d", sum[0])
		}
		return p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
