// Package benchkit runs the paper-figure performance suite from a
// normal binary (the `rmarace bench` subcommand) by driving
// testing.Benchmark directly, and serialises the measurements — ns/op,
// allocs/op and the node-count metrics of Figure 10 and Table 4 — to
// JSON so successive PRs can diff BENCH_PR2.json-style snapshots
// without parsing `go test -bench` text output.
//
// The same stream generators back the package-level benchmarks in
// bench_test.go, so the CLI numbers and `go test -bench` numbers are
// measured on identical workloads.
package benchkit

import (
	"encoding/json"
	"fmt"
	"io"
	"testing"

	"rmarace/internal/access"
	"rmarace/internal/apps/cfdproxy"
	"rmarace/internal/apps/minivite"
	"rmarace/internal/core"
	"rmarace/internal/depot"
	"rmarace/internal/detector"
	"rmarace/internal/engine"
	"rmarace/internal/interval"
	"rmarace/internal/obs"
	"rmarace/internal/rma"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full suite output written to BENCH_PR2.json.
type Report struct {
	Suite   string   `json:"suite"`
	Results []Result `json:"results"`
	// Runs carries structured run reports (the same
	// "rmarace/run-report/v1" schema as `rmarace replay -report`) from
	// fully instrumented application runs, so the benchmark snapshot
	// records the pipeline metrics alongside the timings.
	Runs []*obs.RunReport `json:"runs,omitempty"`
}

// Options scales the suite.
type Options struct {
	// Vertices is the MiniVite input size (Table 4); 0 selects a scaled
	// default that keeps the whole suite under a minute.
	Vertices int
	// Shards lists the shard counts of the notification-throughput
	// series; nil selects {1, 2, 4, 8}.
	Shards []int
	// Registry, when non-nil, is attached as the instrumented run's
	// metrics recorder instead of a private one — the hook that lets
	// `rmarace bench -telemetry` serve the suite's live /metrics.
	Registry *obs.Registry
	// SpanSink, when non-nil, receives the instrumented CFD-Proxy run's
	// causal spans as Chrome trace-event JSON (`rmarace bench -spans`).
	SpanSink io.Writer
	// Quick restricts the suite to the gated series — insert hot path,
	// notification throughput, clock memory, stack depot — skipping the
	// slower figure/table reproductions (the CI memory-bench step).
	Quick bool
}

// Suite runs every benchmark and collects the report.
func Suite(opts Options) Report {
	if opts.Vertices <= 0 {
		opts.Vertices = 16000
	}
	if len(opts.Shards) == 0 {
		opts.Shards = []int{1, 2, 4, 8}
	}
	var out []Result
	out = append(out, insertResults()...)
	out = append(out, notificationResults(opts.Shards)...)
	out = append(out, clockMemResults(256)...)
	out = append(out, depotResults()...)
	out = append(out, traceIngestResults(opts.Quick)...)
	out = append(out, serveSweepResults(opts.Quick)...)
	if opts.Quick {
		return Report{
			Suite:   "rmarace perf suite (quick: insert hot path, sharded pipeline, clock memory, stack depot, trace ingest, serve sweep)",
			Results: out,
		}
	}
	out = append(out, figure10Results()...)
	out = append(out, table4Results(opts.Vertices)...)
	return Report{
		Suite:   "rmarace perf suite (insert hot path, sharded pipeline, clock memory, stack depot, trace ingest, serve sweep, Figure 10, Table 4)",
		Results: out,
		Runs:    runReports(opts),
	}
}

// runReports executes one instrumented CFD-Proxy run under the
// contribution and returns its structured run report.
func runReports(opts Options) []*obs.RunReport {
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	cfg := cfdproxy.Config{Ranks: 8, Iters: 6, Points: 16, InteriorOps: 64}
	res, err := cfdproxy.RunOpts(cfg, rma.Config{
		Method:   detector.OurContribution,
		Recorder: reg,
		Spans:    opts.SpanSink != nil,
	})
	if err != nil || res.Report == nil {
		return nil
	}
	if opts.SpanSink != nil && res.Spans != nil {
		// A failed span export must not discard the suite's measurements;
		// the caller notices the truncated sink.
		_ = res.Spans.WriteChromeTrace(opts.SpanSink)
	}
	res.Report.Source = "bench"
	return []*obs.RunReport{res.Report}
}

// WriteJSON writes the report as indented JSON.
func (rep Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func result(name string, r testing.BenchmarkResult, metrics map[string]float64) Result {
	return Result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Metrics:     metrics,
	}
}

// insertResults measures per-access analyzer cost (the zero-allocation
// hot path) on the two access patterns of the evaluation.
func insertResults() []Result {
	var out []Result
	for _, pat := range []struct {
		name   string
		stream []detector.Event
	}{
		{"adjacent", AdjacentStream(4096)},
		{"strided", StridedStream(4096)},
	} {
		pat := pat
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			z := core.New()
			for i := 0; i < b.N; i++ {
				if race := z.Access(pat.stream[i%len(pat.stream)]); race != nil {
					b.Fatal(race)
				}
				if i%len(pat.stream) == len(pat.stream)-1 {
					z.EpochEnd()
				}
			}
		})
		out = append(out, result("insert/ours/"+pat.name, r, nil))
	}
	return out
}

// notificationResults measures end-to-end engine throughput (one op =
// one analysed event) across shard counts — the tentpole's ≥2× claim is
// shards8 versus shards1 here.
func notificationResults(shardCounts []int) []Result {
	stream := AdjacentStream(1 << 14)
	var out []Result
	for _, shards := range shardCounts {
		shards := shards
		var nodes, maxShard float64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			e := engine.New(engine.Config{
				Ranks:       1,
				NewAnalyzer: func(int) detector.Analyzer { return core.Build(core.WithShards(shards)) },
			})
			e.StartReceiver(0)
			defer e.Close()
			b.ResetTimer()
			var sent int64
			const batch = 64
			for i := 0; i < b.N; {
				for off := 0; off < len(stream) && i < b.N; off += batch {
					end := off + batch
					if end > len(stream) {
						end = len(stream)
					}
					evs := append(e.GetEventBuf(), stream[off:end]...)
					if err := e.Notify(0, evs); err != nil {
						b.Fatal(err)
					}
					sent += int64(end - off)
					i += end - off
				}
				if err := e.WaitReceived(0, sent); err != nil {
					b.Fatal(err)
				}
				e.EpochEnd(0)
			}
			b.StopTimer()
			e.WithAnalyzer(0, func(a detector.Analyzer) {
				nodes = float64(a.MaxNodes())
				if s, ok := a.(interface{ MaxShardNodes() int }); ok {
					maxShard = float64(s.MaxShardNodes())
				}
			})
		})
		out = append(out, result(fmt.Sprintf("notification-throughput/shards%d", shards), r, map[string]float64{
			"max_nodes":       nodes,
			"max_shard_nodes": maxShard,
		}))
	}
	return out
}

// clockMemWorkload drives one MUST-RMA clock workload at scale ranks:
// four passive-target epochs, each taking 64 call-site snapshots per
// rank (with interleaved local advances) before the collective join.
func clockMemWorkload(s *detector.MustShared, ranks int) {
	t := uint64(1)
	for epoch := 0; epoch < 4; epoch++ {
		for r := 0; r < ranks; r++ {
			for k := 0; k < 64; k++ {
				s.Advance(r, t)
				_ = s.Snapshot(r, t)
				t++
			}
		}
		s.JoinAll()
	}
}

// clockMemResults measures the happens-before clock memory at scale:
// the identical 256-rank snapshot workload under the adaptive
// epoch⇄vector representation and the always-vector baseline. The
// metrics record the clock payload each representation allocates —
// reduction_x on the adaptive series is the §5.3 piggybacking cost
// recovered (gated ≥10× in CI).
func clockMemResults(ranks int) []Result {
	var out []Result
	for _, mode := range []struct {
		name string
		mk   func() *detector.MustShared
	}{
		{"adaptive", func() *detector.MustShared { return detector.NewMustShared(ranks) }},
		{"vector", func() *detector.MustShared { return detector.NewMustSharedVector(ranks) }},
	} {
		mode := mode
		var stats detector.ClockStats
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := mode.mk()
				clockMemWorkload(s, ranks)
				stats = s.ClockStats()
			}
		})
		m := map[string]float64{
			"clock_bytes":        float64(stats.BytesAdaptive),
			"clock_bytes_vector": float64(stats.BytesVector),
			"epoch_snapshots":    float64(stats.EpochSnaps),
			"shared_snapshots":   float64(stats.SharedSnaps),
			"vector_snapshots":   float64(stats.VectorSnaps),
			"promotions":         float64(stats.Promotions),
			"full_clocks_live":   float64(stats.FullClocksLive),
			"epochs_held":        float64(stats.EpochsHeld),
		}
		if stats.BytesAdaptive > 0 {
			m["reduction_x"] = float64(stats.BytesVector) / float64(stats.BytesAdaptive)
		}
		out = append(out, result(fmt.Sprintf("clock-mem/r%d/%s", ranks, mode.name), r, m))
	}
	return out
}

// depotResults measures stack-depot deduplication on a synthetic
// workload of 10000 captures over 32 distinct call sites — the shape a
// capture-enabled run produces (many accesses, few sites).
func depotResults() []Result {
	const sites, captures = 32, 10000
	pcs := make([][]uintptr, sites)
	for s := range pcs {
		pcs[s] = []uintptr{uintptr(0x400000 + s), uintptr(0x500000 + s*3), uintptr(0x600000 + s*7)}
	}
	var stats depot.Stats
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d := depot.New()
			for k := 0; k < captures; k++ {
				d.Insert(pcs[k%sites], func([]uintptr) string { return "synthetic frame (bench.go:1)" })
			}
			stats = d.Stats()
		}
	})
	m := map[string]float64{
		"entries": float64(stats.Entries),
		"bytes":   float64(stats.Bytes),
		"hits":    float64(stats.Hits),
		"misses":  float64(stats.Misses),
	}
	if stats.Entries > 0 {
		m["dedup_x"] = float64(captures) / float64(stats.Entries)
	}
	return []Result{result("stack-depot/dedup", r, m)}
}

// figure10Results runs the scaled CFD-Proxy workload per method and
// records the epoch-time and node metrics of the figure's bars.
func figure10Results() []Result {
	cfg := cfdproxy.Config{Ranks: 12, Iters: 10, Points: 20, InteriorOps: 200}
	var out []Result
	for _, m := range detector.Methods() {
		m := m
		var res cfdproxy.Result
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			var err error
			for i := 0; i < b.N; i++ {
				res, err = cfdproxy.Run(cfg, m)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		out = append(out, result("figure10-cfdproxy/"+m.String(), r, map[string]float64{
			"epoch_ms": float64(res.EpochTime.Milliseconds()),
			"nodes":    float64(res.MaxNodesPerProcess),
		}))
	}
	return out
}

// table4Results reports the per-process node counts of the two
// tree-based analyzers on MiniVite.
func table4Results(vertices int) []Result {
	var out []Result
	for _, mm := range []struct {
		name string
		m    detector.Method
	}{
		{"rma-analyzer", detector.RMAAnalyzer},
		{"our-contribution", detector.OurContribution},
	} {
		mm := mm
		var res minivite.Result
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			var err error
			for i := 0; i < b.N; i++ {
				res, err = minivite.Run(minivite.Default(8, vertices), mm.m)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		out = append(out, result("table4-nodes/r8/"+mm.name, r, map[string]float64{
			"nodes":   float64(res.MaxNodesPerProcess),
			"proc_ms": float64(res.PerProcessTime.Microseconds()) / 1000,
		}))
	}
	return out
}

// AdjacentStream emits n adjacent same-line RMA writes (mergeable): the
// CFD-Proxy-shaped pattern.
func AdjacentStream(n int) []detector.Event {
	out := make([]detector.Event, n)
	for i := range out {
		out[i] = detector.Event{
			Acc: access.Access{
				Interval: interval.Span(uint64(i)*8, 8),
				Type:     access.RMAWrite,
				Rank:     0,
				Debug:    access.Debug{File: "adj.c", Line: 7},
			},
			Time: uint64(i + 1), CallTime: uint64(i + 1),
		}
	}
	return out
}

// StridedStream emits n strided reads at distinct lines (unmergeable):
// the MiniVite-shaped pattern.
func StridedStream(n int) []detector.Event {
	out := make([]detector.Event, n)
	for i := range out {
		out[i] = detector.Event{
			Acc: access.Access{
				Interval: interval.Span(uint64(i)*24, 8),
				Type:     access.RMARead,
				Rank:     0,
				Debug:    access.Debug{File: "strided.c", Line: 100 + i%4},
			},
			Time: uint64(i + 1), CallTime: uint64(i + 1),
		}
	}
	return out
}
