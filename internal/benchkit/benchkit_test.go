package benchkit

import (
	"bytes"
	"encoding/json"
	"testing"

	"rmarace/internal/obs"
)

// TestRunReportsSchema: the bench snapshot's `runs` section carries a
// valid rmarace/run-report/v1 document that survives a JSON round
// trip, so BENCH_*.json consumers can rely on the same schema as
// `rmarace replay -report`.
func TestRunReportsSchema(t *testing.T) {
	runs := runReports(Options{})
	if len(runs) != 1 {
		t.Fatalf("runReports() returned %d reports, want 1", len(runs))
	}
	rep := runs[0]
	if err := rep.Validate(); err != nil {
		t.Fatalf("bench run report invalid: %v", err)
	}
	if rep.Source != "bench" {
		t.Errorf("source = %q, want bench", rep.Source)
	}
	if rep.Events == 0 || len(rep.Windows) == 0 || len(rep.Metrics) == 0 {
		t.Errorf("bench run report is empty: %+v", rep)
	}

	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(Report{Suite: "t", Runs: runs}); err != nil {
		t.Fatal(err)
	}
	var back struct {
		Runs []json.RawMessage `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Runs) != 1 {
		t.Fatalf("runs section lost in serialisation: %s", buf.Bytes())
	}
	if _, err := obs.ReadReport(bytes.NewReader(back.Runs[0])); err != nil {
		t.Fatalf("embedded run report does not re-read: %v", err)
	}
}
