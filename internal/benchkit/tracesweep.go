package benchkit

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"rmarace/internal/core"
	"rmarace/internal/detector"
	"rmarace/internal/obs"
	"rmarace/internal/trace"
	"rmarace/internal/tracebin"
)

// The trace-ingest sweep (PR 7): one many-rank trace rendered in both
// formats, scanned and replayed under identical conditions, so the
// snapshot records the codec's ingest throughput (MB/s, records/s),
// the end-to-end replay throughput, and the bounded-memory policy's
// peak-RSS profile. Series:
//
//	trace-ingest/rN/{json,bin}  decode-only scan; bin carries speedup_x
//	trace-replay/rN/{json,bin}  full streaming replay, eviction on
//	trace-rss/rN/growth         same trace at 1x and 4x the epochs:
//	                            peak live heap must stay ~flat
//
// The quick sweep keeps CI under a minute; the full sweep is the
// 10k-rank, 5M-event strong-scaling run behind BENCH_PR7.json.
type sweepScale struct {
	ranks, owners  int
	eventsPerEpoch int
	epochs         int
	// rss growth run: constant events/epoch, 1x vs 4x epochs
	rssEventsPerEpoch int
	rssEpochs         int
}

func sweepScaleFor(quick bool) sweepScale {
	if quick {
		return sweepScale{ranks: 256, owners: 256, eventsPerEpoch: 25_000, epochs: 4,
			rssEventsPerEpoch: 12_500, rssEpochs: 2}
	}
	return sweepScale{ranks: 10_000, owners: 10_000, eventsPerEpoch: 1_250_000, epochs: 4,
		rssEventsPerEpoch: 625_000, rssEpochs: 2}
}

// sweepReplayOpts is the bounded-memory configuration every replay of
// the sweep uses: engine-shaped event batches, cold owners retired
// after two accessless epochs, capacity released at epoch boundaries.
func sweepReplayOpts(rec obs.Recorder) trace.ReplayOpts {
	return trace.ReplayOpts{Batch: 64, EvictCold: 2, Compact: true, Recorder: rec}
}

func sweepGenConfig(s sweepScale) trace.GenConfig {
	return trace.GenConfig{
		Ranks: s.ranks, Events: s.eventsPerEpoch, Epochs: s.epochs,
		Owners: s.owners,
		// Skew 0.98 concentrates ~80% of the traffic on owner 0 and
		// leaves the owner tail cold for whole epochs at a time — the
		// workload the cold-owner eviction policy is built for.
		OwnerSkew: 0.98,
		Adjacency: 0.6, SafeOnly: true, Seed: 7,
	}
}

// traceIngestResults generates the sweep trace in both formats under a
// temp directory, then measures decode-only and full-replay passes.
func traceIngestResults(quick bool) []Result {
	s := sweepScaleFor(quick)
	dir, err := os.MkdirTemp("", "rmarace-sweep-")
	if err != nil {
		panic(fmt.Errorf("benchkit: trace sweep temp dir: %w", err))
	}
	defer os.RemoveAll(dir)

	jsonPath := dir + "/sweep.jsonl"
	binPath := dir + "/sweep.bin"
	genJSON(jsonPath, sweepGenConfig(s))
	convertJSONToBin(jsonPath, binPath)
	jsonBytes := fileSize(jsonPath)
	binBytes := fileSize(binPath)

	var out []Result

	// Decode-only: the codec's ingest rate with no analysis attached.
	jsonScanNs, records := scanTrace(jsonPath)
	binScanNs, binRecords := scanTrace(binPath)
	if records != binRecords {
		panic(fmt.Errorf("benchkit: sweep decode disagrees: %d JSON records, %d binary", records, binRecords))
	}
	out = append(out,
		scanResult(fmt.Sprintf("trace-ingest/r%d/json", s.ranks), jsonScanNs, jsonBytes, records, 0),
		scanResult(fmt.Sprintf("trace-ingest/r%d/bin", s.ranks), binScanNs, binBytes, records,
			float64(jsonScanNs)/float64(binScanNs)))

	// Full replay, bounded-memory options on, identical for both formats.
	jres, jNs, jPeak := replayTrace(jsonPath)
	bres, bNs, bPeak := replayTrace(binPath)
	if jres.Events != bres.Events || jres.Epochs != bres.Epochs || (jres.Race == nil) != (bres.Race == nil) {
		panic(fmt.Errorf("benchkit: sweep replays diverged: JSON %+v, binary %+v", jres, bres))
	}
	out = append(out,
		replayResult(fmt.Sprintf("trace-replay/r%d/json", s.ranks), jNs, jres, jPeak, 0),
		replayResult(fmt.Sprintf("trace-replay/r%d/bin", s.ranks), bNs, bres, bPeak,
			float64(jNs)/float64(bNs)))

	out = append(out, rssGrowthResult(s, dir))
	return out
}

// rssGrowthResult replays the same binary workload at 1x and 4x the
// epoch count (constant events per epoch, so 4x the events) and
// records the peak live heap of each: with eviction and compaction on,
// resident state tracks the hot owner set, not the stream length, so
// the growth factor is gated ~flat (<= 2x at 4x the events).
func rssGrowthResult(s sweepScale, dir string) Result {
	small := sweepGenConfig(s)
	small.Events, small.Epochs = s.rssEventsPerEpoch, s.rssEpochs
	large := small
	large.Epochs = small.Epochs * 4

	smallPath := dir + "/rss-small.bin"
	largePath := dir + "/rss-large.bin"
	genBin(smallPath, small)
	genBin(largePath, large)

	sres, _, sPeak := replayTrace(smallPath)
	lres, lNs, lPeak := replayTrace(largePath)
	m := map[string]float64{
		"events_small":    float64(sres.Events),
		"events_large":    float64(lres.Events),
		"rss_small_bytes": float64(sPeak),
		"rss_large_bytes": float64(lPeak),
		"evictions":       float64(lres.Evictions),
		"scale_x":         4,
	}
	if sPeak > 0 {
		m["growth_x"] = float64(lPeak) / float64(sPeak)
	}
	return Result{
		Name:       fmt.Sprintf("trace-rss/r%d/growth", s.ranks),
		Iterations: 1,
		NsPerOp:    float64(lNs),
		Metrics:    m,
	}
}

func genJSON(path string, cfg trace.GenConfig) {
	f, err := os.Create(path)
	if err != nil {
		panic(fmt.Errorf("benchkit: trace sweep: %w", err))
	}
	if _, err := trace.Generate(f, cfg); err != nil {
		panic(fmt.Errorf("benchkit: generating sweep trace: %w", err))
	}
	if err := f.Close(); err != nil {
		panic(err)
	}
}

func genBin(path string, cfg trace.GenConfig) {
	f, err := os.Create(path)
	if err != nil {
		panic(fmt.Errorf("benchkit: trace sweep: %w", err))
	}
	bw, err := tracebin.NewWriter(f, trace.Header{Ranks: cfg.Ranks, Window: "synthetic"})
	if err != nil {
		panic(err)
	}
	if _, err := trace.GenerateTo(bw, cfg); err != nil {
		panic(fmt.Errorf("benchkit: generating binary sweep trace: %w", err))
	}
	if err := f.Close(); err != nil {
		panic(err)
	}
}

func convertJSONToBin(jsonPath, binPath string) {
	in, err := os.Open(jsonPath)
	if err != nil {
		panic(err)
	}
	defer in.Close()
	src, _, err := tracebin.Open(in)
	if err != nil {
		panic(err)
	}
	out, err := os.Create(binPath)
	if err != nil {
		panic(err)
	}
	bw, err := tracebin.NewWriter(out, src.Head())
	if err != nil {
		panic(err)
	}
	if _, err := tracebin.Convert(bw, src); err != nil {
		panic(fmt.Errorf("benchkit: converting sweep trace: %w", err))
	}
	if err := out.Close(); err != nil {
		panic(err)
	}
}

func fileSize(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		panic(err)
	}
	return fi.Size()
}

// scanTrace decodes every record of the trace without analysing it and
// returns the elapsed wall time — the pure ingest cost of the format.
func scanTrace(path string) (ns int64, records int64) {
	f, err := os.Open(path)
	if err != nil {
		panic(err)
	}
	defer f.Close()
	src, _, err := tracebin.Open(f)
	if err != nil {
		panic(err)
	}
	var rec trace.Record
	start := time.Now()
	for {
		err := src.Read(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			panic(fmt.Errorf("benchkit: scanning %s: %w", path, err))
		}
		records++
	}
	return time.Since(start).Nanoseconds(), records
}

// replayTrace runs the full bounded-memory streaming replay and
// returns the result, wall time, and the peak live heap the replay's
// recorder sampled.
func replayTrace(path string) (trace.ReplayResult, int64, int64) {
	f, err := os.Open(path)
	if err != nil {
		panic(err)
	}
	defer f.Close()
	src, _, err := tracebin.Open(f)
	if err != nil {
		panic(err)
	}
	reg := obs.NewRegistry()
	newA := func(int) detector.Analyzer { return core.New() }
	runtime.GC() // clean baseline for the peak-heap high-water mark
	start := time.Now()
	res, err := trace.ReplayStream(src, newA, sweepReplayOpts(reg))
	if err != nil {
		panic(fmt.Errorf("benchkit: replaying %s: %w", path, err))
	}
	return res, time.Since(start).Nanoseconds(), reg.Total(obs.PeakRSS)
}

func scanResult(name string, ns, bytes, records int64, speedup float64) Result {
	sec := float64(ns) / 1e9
	m := map[string]float64{
		"mb_per_s":      float64(bytes) / 1e6 / sec,
		"records_per_s": float64(records) / sec,
		"trace_bytes":   float64(bytes),
		"records":       float64(records),
	}
	if speedup > 0 {
		m["speedup_x"] = speedup
	}
	return Result{Name: name, Iterations: 1, NsPerOp: float64(ns), Metrics: m}
}

func replayResult(name string, ns int64, res trace.ReplayResult, peak int64, speedup float64) Result {
	sec := float64(ns) / 1e9
	m := map[string]float64{
		"events_per_s":   float64(res.Events) / sec,
		"events":         float64(res.Events),
		"epochs":         float64(res.Epochs),
		"max_nodes":      float64(res.MaxNodes),
		"evictions":      float64(res.Evictions),
		"peak_rss_bytes": float64(peak),
	}
	if speedup > 0 {
		m["speedup_x"] = speedup
	}
	return Result{Name: name, Iterations: 1, NsPerOp: float64(ns), Metrics: m}
}
