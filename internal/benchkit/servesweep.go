package benchkit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"rmarace/internal/detector"
	"rmarace/internal/obs"
	"rmarace/internal/serve"
	"rmarace/internal/trace"
	"rmarace/internal/tracebin"
)

// The serve sweep (PR 8): a daemon hosted in-process behind an HTTP
// test server, hit with a fan-out of concurrent sessions streaming
// mixed JSON/binary traces across several tenants. The snapshot
// records the daemon's aggregate ingest throughput and — the gated
// part — that every served verdict matched an offline replay of the
// same trace and that a tenant over its concurrency quota observably
// got a 429. Series:
//
//	serve-agg/sN        N concurrent sessions: aggregate MB/s,
//	                    sessions/s, verdict_mismatches (gated == 0)
//	serve-quota/rejects admission control: quota_rejects (gated >= 1)
func serveSweepResults(quick bool) []Result {
	sessions := 256
	if quick {
		sessions = 64
	}
	return []Result{serveAggResult(sessions), serveQuotaResult()}
}

// serveBase is one pre-rendered trace plus its offline ground truth.
type serveBase struct {
	data []byte
	want trace.ReplayResult
}

func serveBases() []serveBase {
	var bases []serveBase
	for seed := int64(0); seed < 2; seed++ {
		for _, planted := range []bool{false, true} {
			cfg := trace.GenConfig{
				Ranks: 8, Events: 4_000, Epochs: 2, Owners: 8,
				Adjacency: 0.5, SafeOnly: true, PlantRace: planted, Seed: 40 + seed,
			}
			for _, format := range []string{"json", "bin"} {
				var buf bytes.Buffer
				var sink trace.Sink
				var err error
				h := trace.Header{Ranks: cfg.Ranks, Window: "synthetic"}
				if format == "bin" {
					sink, err = tracebin.NewWriter(&buf, h)
				} else {
					sink, err = trace.NewWriter(&buf, h)
				}
				if err != nil {
					panic(fmt.Errorf("benchkit: serve sweep writer: %w", err))
				}
				if _, err := trace.GenerateTo(sink, cfg); err != nil {
					panic(fmt.Errorf("benchkit: generating serve sweep trace: %w", err))
				}
				bases = append(bases, serveBase{buf.Bytes(), serveOffline(buf.Bytes())})
			}
		}
	}
	return bases
}

// serveOffline replays a trace the way `rmarace replay` would — the
// ground truth every served verdict is compared against.
func serveOffline(data []byte) trace.ReplayResult {
	src, _, err := tracebin.Open(bytes.NewReader(data))
	if err != nil {
		panic(err)
	}
	factory, _, err := serve.NewAnalyzerFactory(detector.OurContribution, src.Head().Ranks, "", 1, nil)
	if err != nil {
		panic(err)
	}
	res, err := trace.ReplayStream(src, factory, trace.ReplayOpts{})
	if err != nil {
		panic(fmt.Errorf("benchkit: serve sweep offline replay: %w", err))
	}
	return res
}

// serveVerdict is the slice of the daemon's verdict document the sweep
// compares.
type serveVerdict struct {
	Events   int `json:"events"`
	Epochs   int `json:"epochs"`
	MaxNodes int `json:"max_nodes"`
	Race     *struct {
		Message string `json:"message"`
	} `json:"race"`
}

func serveSubmit(client *http.Client, url, tenant string, body io.Reader) (int, serveVerdict, error) {
	var v serveVerdict
	req, err := http.NewRequest("POST", url+"/v1/analyze", body)
	if err != nil {
		return 0, v, err
	}
	req.Header.Set("X-Tenant", tenant)
	resp, err := client.Do(req)
	if err != nil {
		return 0, v, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, v, err
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &v); err != nil {
			return resp.StatusCode, v, err
		}
	}
	return resp.StatusCode, v, nil
}

// serveAggResult fans out the concurrent-session load and measures the
// daemon's aggregate throughput plus verdict fidelity.
func serveAggResult(sessions int) Result {
	bases := serveBases()
	d := serve.NewDaemon(serve.Config{Workers: 8, MaxSessions: sessions, TenantSessions: sessions})
	srv := httptest.NewServer(d)
	defer srv.Close()

	var bytesIn, mismatches, failures atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < sessions; i++ {
		b := bases[i%len(bases)]
		tenant := fmt.Sprintf("tenant-%d", i%5)
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, v, err := serveSubmit(srv.Client(), srv.URL, tenant, bytes.NewReader(b.data))
			if err != nil || code != http.StatusOK {
				failures.Add(1)
				return
			}
			bytesIn.Add(int64(len(b.data)))
			switch {
			case (b.want.Race == nil) != (v.Race == nil):
				mismatches.Add(1)
			case b.want.Race != nil && v.Race.Message != b.want.Race.Message():
				mismatches.Add(1)
			case v.Events != b.want.Events || v.Epochs != b.want.Epochs || v.MaxNodes != b.want.MaxNodes:
				mismatches.Add(1)
			}
		}()
	}
	wg.Wait()
	ns := time.Since(start).Nanoseconds()
	if n := failures.Load(); n > 0 {
		panic(fmt.Errorf("benchkit: serve sweep: %d of %d sessions failed", n, sessions))
	}
	sec := float64(ns) / 1e9
	return Result{
		Name:       fmt.Sprintf("serve-agg/s%d", sessions),
		Iterations: 1,
		NsPerOp:    float64(ns) / float64(sessions),
		Metrics: map[string]float64{
			"sessions":           float64(sessions),
			"sessions_per_s":     float64(sessions) / sec,
			"agg_mb_per_s":       float64(bytesIn.Load()) / 1e6 / sec,
			"ingest_bytes":       float64(bytesIn.Load()),
			"verdict_mismatches": float64(mismatches.Load()),
			"races_served":       float64(d.Registry().Total(obs.ServeRaces)),
		},
	}
}

// serveQuotaResult exercises admission control: one tenant holds its
// single session slot open mid-stream while a second submission from
// the same tenant must bounce with 429, observable in the daemon's
// quota-reject counter.
func serveQuotaResult() Result {
	d := serve.NewDaemon(serve.Config{Workers: 2, MaxSessions: 4, TenantSessions: 1})
	srv := httptest.NewServer(d)
	defer srv.Close()

	bases := serveBases()
	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		code, _, err := serveSubmit(srv.Client(), srv.URL, "hog", pr)
		if err == nil && code != http.StatusOK {
			err = fmt.Errorf("held session finished with %d", code)
		}
		done <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for d.Registry().Total(obs.ServeActiveSessions) == 0 {
		if time.Now().After(deadline) {
			panic(fmt.Errorf("benchkit: serve quota sweep: held session never admitted"))
		}
		time.Sleep(2 * time.Millisecond)
	}
	start := time.Now()
	code, _, err := serveSubmit(srv.Client(), srv.URL, "hog", bytes.NewReader(bases[0].data))
	ns := time.Since(start).Nanoseconds()
	if err != nil {
		panic(fmt.Errorf("benchkit: serve quota sweep: %w", err))
	}
	if code != http.StatusTooManyRequests {
		panic(fmt.Errorf("benchkit: serve quota sweep: over-quota session got %d, want 429", code))
	}
	// Release the hog with a real stream so the held session completes.
	if _, err := pw.Write(bases[0].data); err != nil {
		panic(err)
	}
	pw.Close()
	if err := <-done; err != nil {
		panic(fmt.Errorf("benchkit: serve quota sweep: %w", err))
	}
	return Result{
		Name:       "serve-quota/rejects",
		Iterations: 1,
		NsPerOp:    float64(ns),
		Metrics: map[string]float64{
			"quota_rejects": float64(d.Registry().Total(obs.ServeQuotaRejects)),
			"limit_aborts":  float64(d.Registry().Total(obs.ServeLimitAborts)),
		},
	}
}
