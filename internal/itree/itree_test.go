package itree

import (
	"math/rand"
	"sort"
	"testing"

	"rmarace/internal/access"
	"rmarace/internal/interval"
)

func acc(lo, hi uint64) access.Access {
	return access.Access{Interval: interval.New(lo, hi), Type: access.RMARead}
}

func TestEmptyTree(t *testing.T) {
	var tr Tree
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatalf("zero tree: Len=%d Height=%d", tr.Len(), tr.Height())
	}
	if got := tr.Stab(interval.New(0, 100)); len(got) != 0 {
		t.Fatalf("stab on empty tree returned %v", got)
	}
	if tr.Delete(interval.At(3)) {
		t.Fatal("delete on empty tree reported success")
	}
	if _, ok := tr.FindAt(0); ok {
		t.Fatal("FindAt on empty tree reported a hit")
	}
}

func TestInsertAndStab(t *testing.T) {
	var tr Tree
	tr.Insert(acc(2, 12))
	tr.Insert(acc(20, 25))
	tr.Insert(acc(14, 15))

	got := tr.Stab(interval.At(7))
	if len(got) != 1 || got[0].Interval != interval.New(2, 12) {
		t.Fatalf("Stab([7]) = %v", got)
	}
	if got := tr.Stab(interval.New(13, 13)); len(got) != 0 {
		t.Fatalf("Stab([13]) = %v, want empty", got)
	}
	if got := tr.Stab(interval.New(0, 100)); len(got) != 3 {
		t.Fatalf("Stab(all) = %v", got)
	}
}

// TestStabFindsIntervalOffSearchPath is the structural fix the paper's
// Figure 5 motivates: a wide interval stored left of a narrower key must
// still be found when stabbing to its right. The legacy BST misses it.
func TestStabFindsIntervalOffSearchPath(t *testing.T) {
	var tr Tree
	tr.Insert(acc(4, 4))  // ([4], Local_Read) in the paper's example
	tr.Insert(acc(2, 12)) // MPI_Put, keyed left of [4]

	got := tr.Stab(interval.At(7)) // the Store(7)
	if len(got) != 1 || got[0].Interval != interval.New(2, 12) {
		t.Fatalf("Stab([7]) = %v, want exactly [2...12]", got)
	}
}

func TestStabOrderedOutput(t *testing.T) {
	var tr Tree
	for _, lo := range []uint64{40, 10, 30, 0, 20} {
		tr.Insert(acc(lo, lo+5))
	}
	got := tr.Stab(interval.New(0, 100))
	for i := 1; i < len(got); i++ {
		if got[i-1].Interval.Compare(got[i].Interval) >= 0 {
			t.Fatalf("stab output not sorted: %v", got)
		}
	}
}

func TestDelete(t *testing.T) {
	var tr Tree
	ivs := []interval.Interval{
		interval.New(0, 5), interval.New(10, 15), interval.New(20, 25),
		interval.New(30, 35), interval.New(40, 45),
	}
	for _, iv := range ivs {
		tr.Insert(access.Access{Interval: iv})
	}
	if !tr.Delete(interval.New(20, 25)) {
		t.Fatal("delete of present interval failed")
	}
	if tr.Delete(interval.New(20, 25)) {
		t.Fatal("double delete succeeded")
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d after delete", tr.Len())
	}
	if got := tr.Stab(interval.New(20, 25)); len(got) != 0 {
		t.Fatalf("deleted interval still stabbed: %v", got)
	}
	for _, iv := range []interval.Interval{ivs[0], ivs[1], ivs[3], ivs[4]} {
		if got := tr.Stab(iv); len(got) != 1 {
			t.Fatalf("surviving interval %v not found", iv)
		}
	}
}

func TestFindAt(t *testing.T) {
	var tr Tree
	tr.Insert(acc(10, 20))
	if a, ok := tr.FindAt(15); !ok || a.Interval != interval.New(10, 20) {
		t.Fatalf("FindAt(15) = %v, %v", a, ok)
	}
	if _, ok := tr.FindAt(21); ok {
		t.Fatal("FindAt(21) hit")
	}
}

func TestClear(t *testing.T) {
	var tr Tree
	tr.Insert(acc(0, 1))
	tr.Insert(acc(2, 3))
	tr.Clear()
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatal("Clear did not empty the tree")
	}
}

func TestItems(t *testing.T) {
	var tr Tree
	tr.Insert(acc(10, 12))
	tr.Insert(acc(0, 2))
	items := tr.Items()
	if len(items) != 2 || items[0].Lo != 0 || items[1].Lo != 10 {
		t.Fatalf("Items() = %v", items)
	}
}

func TestVisitStabEarlyStop(t *testing.T) {
	var tr Tree
	for lo := uint64(0); lo < 100; lo += 10 {
		tr.Insert(acc(lo, lo+5))
	}
	count := 0
	done := tr.VisitStab(interval.New(0, 99), func(access.Access) bool {
		count++
		return count < 3
	})
	if done || count != 3 {
		t.Fatalf("early stop: done=%v count=%d", done, count)
	}
}

func TestBalancedHeight(t *testing.T) {
	var tr Tree
	const n = 1 << 12
	// Worst case for an unbalanced BST: sorted insertion.
	for i := 0; i < n; i++ {
		tr.Insert(acc(uint64(i*10), uint64(i*10+5)))
	}
	if h := tr.Height(); h > 2*log2(n) {
		t.Fatalf("height %d after %d sorted inserts exceeds AVL bound %d", h, n, 2*log2(n))
	}
}

func log2(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// checkAVL verifies the AVL balance factor, the cached height, the
// cached max upper bound, and the BST ordering of every node.
func checkAVL(t *testing.T, tr *Tree) {
	t.Helper()
	var walk func(n *node) (h int, maxUpper uint64)
	walk = func(n *node) (int, uint64) {
		if n == nil {
			return 0, 0
		}
		lh, lmax := walk(n.left)
		rh, rmax := walk(n.right)
		if diff := lh - rh; diff < -1 || diff > 1 {
			t.Fatalf("AVL balance violated at %v: %d vs %d", n.acc, lh, rh)
		}
		if n.height != 1+max(lh, rh) {
			t.Fatalf("cached height wrong at %v", n.acc)
		}
		maxUpper := n.acc.Hi
		if n.left != nil && lmax > maxUpper {
			maxUpper = lmax
		}
		if n.right != nil && rmax > maxUpper {
			maxUpper = rmax
		}
		if n.maxHi != maxUpper {
			t.Fatalf("cached maxHi wrong at %v: %d vs %d", n.acc, n.maxHi, maxUpper)
		}
		return 1 + max(lh, rh), maxUpper
	}
	walk(tr.root)
	items := tr.Items()
	for i := 1; i < len(items); i++ {
		if items[i-1].Interval.Compare(items[i].Interval) > 0 {
			t.Fatalf("BST ordering violated: %v before %v", items[i-1], items[i])
		}
	}
}

// TestRandomizedAgainstReference drives the tree with random inserts,
// deletes and stabs and compares every answer against a brute-force
// slice reference, while checking the AVL and augmentation invariants.
func TestRandomizedAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	var tr Tree
	var ref []access.Access

	refStab := func(iv interval.Interval) []access.Access {
		var out []access.Access
		for _, a := range ref {
			if a.Intersects(iv) {
				out = append(out, a)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Interval.Compare(out[j].Interval) < 0 })
		return out
	}

	for step := 0; step < 5000; step++ {
		switch op := r.Intn(10); {
		case op < 5: // insert
			lo := uint64(r.Intn(1000))
			a := acc(lo, lo+uint64(r.Intn(20)))
			// Keep reference a set of unique intervals so Delete is
			// unambiguous.
			dup := false
			for _, x := range ref {
				if x.Interval == a.Interval {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			tr.Insert(a)
			ref = append(ref, a)
		case op < 8 && len(ref) > 0: // delete
			i := r.Intn(len(ref))
			iv := ref[i].Interval
			if !tr.Delete(iv) {
				t.Fatalf("step %d: delete %v failed", step, iv)
			}
			ref = append(ref[:i], ref[i+1:]...)
		default: // stab
			lo := uint64(r.Intn(1000))
			iv := interval.New(lo, lo+uint64(r.Intn(30)))
			got := tr.Stab(iv)
			want := refStab(iv)
			if len(got) != len(want) {
				t.Fatalf("step %d: stab %v: got %d hits, want %d", step, iv, len(got), len(want))
			}
			for i := range got {
				if got[i].Interval != want[i].Interval {
					t.Fatalf("step %d: stab %v: item %d = %v, want %v", step, iv, i, got[i], want[i])
				}
			}
		}
		if tr.Len() != len(ref) {
			t.Fatalf("step %d: Len=%d ref=%d", step, tr.Len(), len(ref))
		}
		if step%500 == 0 {
			checkAVL(t, &tr)
		}
	}
	checkAVL(t, &tr)
}

func TestStabNeighbors(t *testing.T) {
	var tr Tree
	tr.Insert(acc(0, 9))   // left neighbour of [10..19]
	tr.Insert(acc(12, 14)) // intersects
	tr.Insert(acc(20, 25)) // right neighbour
	tr.Insert(acc(40, 50)) // unrelated

	var dst []access.Access
	left, right, hasL, hasR := tr.StabNeighbors(interval.New(10, 19), &dst)
	if len(dst) != 1 || dst[0].Interval != interval.New(12, 14) {
		t.Fatalf("intersecting = %v", dst)
	}
	if !hasL || left.Interval != interval.New(0, 9) {
		t.Fatalf("left = %v, %v", left, hasL)
	}
	if !hasR || right.Interval != interval.New(20, 25) {
		t.Fatalf("right = %v, %v", right, hasR)
	}

	// No neighbours when nothing touches the bounds.
	dst = dst[:0]
	_, _, hasL, hasR = tr.StabNeighbors(interval.New(30, 35), &dst)
	if hasL || hasR || len(dst) != 0 {
		t.Fatalf("expected empty result, got dst=%v hasL=%v hasR=%v", dst, hasL, hasR)
	}
}

func TestStabNeighborsRandomizedAgainstStab(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	var tr Tree
	// Disjoint intervals, as the detector maintains.
	lo := uint64(0)
	var all []access.Access
	for i := 0; i < 300; i++ {
		lo += uint64(r.Intn(5) + 1)
		a := acc(lo, lo+uint64(r.Intn(6)))
		lo = a.Hi + 1
		tr.Insert(a)
		all = append(all, a)
	}
	for trial := 0; trial < 1000; trial++ {
		qlo := uint64(r.Intn(int(lo)))
		q := interval.New(qlo, qlo+uint64(r.Intn(20)))
		var dst []access.Access
		left, right, hasL, hasR := tr.StabNeighbors(q, &dst)
		want := tr.Stab(q)
		if len(dst) != len(want) {
			t.Fatalf("trial %d: %d hits, want %d", trial, len(dst), len(want))
		}
		for i := range dst {
			if dst[i].Interval != want[i].Interval {
				t.Fatalf("trial %d: item %d = %v, want %v", trial, i, dst[i], want[i])
			}
		}
		for _, a := range all {
			if q.Lo > 0 && a.Hi == q.Lo-1 {
				if !hasL || left.Interval != a.Interval {
					t.Fatalf("trial %d: left neighbour %v missed (got %v/%v)", trial, a, left, hasL)
				}
			}
			if a.Lo == q.Hi+1 {
				if !hasR || right.Interval != a.Interval {
					t.Fatalf("trial %d: right neighbour %v missed", trial, a)
				}
			}
		}
	}
}

func TestExtendHi(t *testing.T) {
	var tr Tree
	tr.Insert(acc(10, 19))
	tr.Insert(acc(30, 39))
	if !tr.ExtendHi(interval.New(10, 19), 25) {
		t.Fatal("ExtendHi failed")
	}
	if got := tr.Stab(interval.At(25)); len(got) != 1 || got[0].Interval != interval.New(10, 25) {
		t.Fatalf("Stab after ExtendHi = %v", got)
	}
	checkAVL(t, &tr)
	if tr.ExtendHi(interval.New(10, 19), 30) {
		t.Fatal("ExtendHi matched a stale interval")
	}
	if tr.ExtendHi(interval.New(10, 25), 20) {
		t.Fatal("ExtendHi accepted a shrink")
	}
}

func TestExtendLo(t *testing.T) {
	var tr Tree
	tr.Insert(acc(10, 19))
	tr.Insert(acc(30, 39))
	if !tr.ExtendLo(interval.New(30, 39), 25) {
		t.Fatal("ExtendLo failed")
	}
	if got := tr.Stab(interval.At(25)); len(got) != 1 || got[0].Interval != interval.New(25, 39) {
		t.Fatalf("Stab after ExtendLo = %v", got)
	}
	checkAVL(t, &tr)
	if tr.ExtendLo(interval.New(25, 39), 28) {
		t.Fatal("ExtendLo accepted a shrink")
	}
	// Items remain ordered after the key change.
	items := tr.Items()
	if len(items) != 2 || items[0].Lo != 10 || items[1].Lo != 25 {
		t.Fatalf("Items = %v", items)
	}
}

func TestExtendMissingInterval(t *testing.T) {
	var tr Tree
	tr.Insert(acc(0, 5))
	if tr.ExtendHi(interval.New(7, 9), 12) || tr.ExtendLo(interval.New(7, 9), 6) {
		t.Fatal("Extend on a missing interval reported success")
	}
}

func TestDuplicateLowerBounds(t *testing.T) {
	// The multiset property: equal intervals coexist and delete removes
	// exactly one.
	var tr Tree
	tr.Insert(acc(5, 10))
	tr.Insert(acc(5, 10))
	tr.Insert(acc(5, 8))
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if got := tr.Stab(interval.At(6)); len(got) != 3 {
		t.Fatalf("Stab = %v", got)
	}
	if !tr.Delete(interval.New(5, 10)) {
		t.Fatal("delete failed")
	}
	if got := tr.Stab(interval.At(9)); len(got) != 1 {
		t.Fatalf("after delete, Stab([9]) = %v", got)
	}
}

// TestFreeListReuse pins the zero-allocation contract: once the tree
// has grown, delete/insert and Clear/refill cycles must run entirely
// off the per-tree free list.
func TestFreeListReuse(t *testing.T) {
	var tr Tree
	const n = 64
	fill := func() {
		for i := 0; i < n; i++ {
			tr.Insert(acc(uint64(i*10), uint64(i*10+5)))
		}
	}
	fill() // warm-up: grow the tree once, paying its allocations

	if got := testing.AllocsPerRun(50, func() {
		for i := 0; i < n; i++ {
			if !tr.Delete(interval.New(uint64(i*10), uint64(i*10+5))) {
				t.Fatal("warm interval missing")
			}
		}
		fill()
	}); got != 0 {
		t.Fatalf("delete/insert cycle allocated %.1f per run, want 0", got)
	}

	if got := testing.AllocsPerRun(50, func() {
		tr.Clear()
		fill()
	}); got != 0 {
		t.Fatalf("Clear/refill cycle allocated %.1f per run, want 0", got)
	}
	if tr.Len() != n {
		t.Fatalf("tree ended with %d nodes, want %d", tr.Len(), n)
	}
}
