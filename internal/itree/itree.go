// Package itree implements the balanced Binary Search Tree the paper's
// new insertion algorithm stores memory accesses in (§4.2: "searches,
// insertions and deletions ... are logarithmic in time as we use a
// (balanced) BST").
//
// The tree is an AVL tree keyed by interval lower bound, augmented with
// the maximum upper bound of each subtree so that stabbing queries
// ("all stored accesses intersecting a given interval") visit only
// O(log n + k) nodes. Under Algorithm 1 the stored intervals are always
// pairwise disjoint, which makes lower bounds unique keys; the tree
// nevertheless tolerates equal lower bounds (ordering by upper bound)
// so it can be exercised and property-tested independently of the
// detector's invariants.
package itree

import (
	"rmarace/internal/access"
	"rmarace/internal/interval"
)

type node struct {
	acc         access.Access
	left, right *node
	height      int
	maxHi       uint64 // max interval.Hi in this subtree
}

// Tree is an AVL interval tree of memory accesses. The zero value is an
// empty tree ready to use. Tree is not safe for concurrent use; in the
// detector each window's tree is owned by a single receiver goroutine,
// matching the paper's per-window analysis thread.
//
// Deleted and cleared nodes are kept on a per-tree free list (chained
// through their left pointers) and reused by later insertions, so the
// steady-state insert/delete cycle of Algorithm 1 — and the per-epoch
// Clear — allocates nothing once the tree has reached its high-water
// size. A plain free list beats a sync.Pool here: the tree is single-
// owner, so there is no synchronisation to pay for, and nodes never
// migrate between analyzers.
type Tree struct {
	root *node
	size int
	// free heads the recycled-node list; freeN bounds its length so a
	// one-off spike does not pin memory forever.
	free  *node
	freeN int
	// nb is StabNeighbors' reusable query state. Keeping it on the
	// (heap-resident, single-owner) tree instead of in locals whose
	// addresses are passed down the recursion keeps the hot path free
	// of escape-forced allocations.
	nb nbQuery
}

// nbQuery carries one StabNeighbors traversal's inputs and results.
type nbQuery struct {
	iv, wide    interval.Interval
	dst         *[]access.Access
	left, right access.Access
	hasLeft     bool
	hasRight    bool
}

// maxFree caps the free list; beyond it nodes are released to the GC.
const maxFree = 1 << 16

// newNode takes a node from the free list, or allocates one.
func (t *Tree) newNode(acc access.Access) *node {
	n := t.free
	if n == nil {
		n = &node{}
	} else {
		t.free = n.left
		t.freeN--
		n.left, n.right = nil, nil
	}
	n.acc = acc
	n.update()
	return n
}

// recycle pushes an unlinked node onto the free list.
func (t *Tree) recycle(n *node) {
	if t.freeN >= maxFree {
		return
	}
	n.left, n.right = t.free, nil
	n.acc = access.Access{}
	t.free = n
	t.freeN++
}

// Len returns the number of stored accesses — the "number of nodes in
// the BST" reported in Table 4 and §5.3.
func (t *Tree) Len() int { return t.size }

// Height returns the height of the tree (0 for an empty tree).
func (t *Tree) Height() int { return height(t.root) }

func height(n *node) int {
	if n == nil {
		return 0
	}
	return n.height
}

func maxHi(n *node) uint64 {
	if n == nil {
		return 0
	}
	return n.maxHi
}

func (n *node) update() {
	n.height = 1 + max(height(n.left), height(n.right))
	n.maxHi = n.acc.Hi
	if l := n.left; l != nil && l.maxHi > n.maxHi {
		n.maxHi = l.maxHi
	}
	if r := n.right; r != nil && r.maxHi > n.maxHi {
		n.maxHi = r.maxHi
	}
}

func rotateRight(y *node) *node {
	x := y.left
	y.left = x.right
	x.right = y
	y.update()
	x.update()
	return x
}

func rotateLeft(x *node) *node {
	y := x.right
	x.right = y.left
	y.left = x
	x.update()
	y.update()
	return y
}

func balance(n *node) *node {
	n.update()
	switch bf := height(n.left) - height(n.right); {
	case bf > 1:
		if height(n.left.left) < height(n.left.right) {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if height(n.right.right) < height(n.right.left) {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

// Insert adds acc to the tree. Accesses with identical intervals are
// both kept (the tree is a multiset, like the std::multiset RMA-Analyzer
// uses); the detector's disjointness invariant makes this case
// unreachable in normal operation.
func (t *Tree) Insert(acc access.Access) {
	t.root = t.insert(t.root, acc)
	t.size++
}

func (t *Tree) insert(n *node, acc access.Access) *node {
	if n == nil {
		return t.newNode(acc)
	}
	if acc.Interval.Compare(n.acc.Interval) < 0 {
		n.left = t.insert(n.left, acc)
	} else {
		n.right = t.insert(n.right, acc)
	}
	return balance(n)
}

// Delete removes the stored access whose interval equals iv and reports
// whether such an access existed. When several accesses share the
// interval an arbitrary one is removed.
func (t *Tree) Delete(iv interval.Interval) bool {
	var deleted bool
	t.root, deleted = t.remove(t.root, iv)
	if deleted {
		t.size--
	}
	return deleted
}

func (t *Tree) remove(n *node, iv interval.Interval) (*node, bool) {
	if n == nil {
		return nil, false
	}
	var deleted bool
	switch cmp := iv.Compare(n.acc.Interval); {
	case cmp < 0:
		n.left, deleted = t.remove(n.left, iv)
	case cmp > 0:
		n.right, deleted = t.remove(n.right, iv)
	default:
		deleted = true
		if n.left == nil {
			r := n.right
			t.recycle(n)
			return r, true
		}
		if n.right == nil {
			l := n.left
			t.recycle(n)
			return l, true
		}
		// Replace with the in-order successor; the successor's physical
		// node is unlinked (and recycled) by the inner removal.
		succ := n.right
		for succ.left != nil {
			succ = succ.left
		}
		n.acc = succ.acc
		n.right, _ = t.remove(n.right, succ.acc.Interval)
	}
	return balance(n), deleted
}

// ExtendHi grows the upper bound of the stored access whose interval
// equals iv to newHi, in place, and reports whether the access was
// found. Under the disjointness invariant the extension cannot cross
// the successor's interval, so the node's position stays valid; only
// the max-upper-bound augmentation is refreshed along the search path.
func (t *Tree) ExtendHi(iv interval.Interval, newHi uint64) bool {
	if newHi < iv.Hi {
		return false
	}
	return adjust(t.root, iv, func(a *access.Access) { a.Hi = newHi })
}

// ExtendLo lowers the lower bound of the stored access whose interval
// equals iv to newLo, in place. Under the disjointness invariant the
// extension cannot cross the predecessor's interval, so the ordering by
// lower bound is preserved.
func (t *Tree) ExtendLo(iv interval.Interval, newLo uint64) bool {
	if newLo > iv.Lo {
		return false
	}
	return adjust(t.root, iv, func(a *access.Access) { a.Lo = newLo })
}

func adjust(n *node, iv interval.Interval, f func(*access.Access)) bool {
	if n == nil {
		return false
	}
	var ok bool
	switch cmp := iv.Compare(n.acc.Interval); {
	case cmp < 0:
		ok = adjust(n.left, iv, f)
	case cmp > 0:
		ok = adjust(n.right, iv, f)
	default:
		f(&n.acc)
		ok = true
	}
	if ok {
		n.update()
	}
	return ok
}

// Stab returns all stored accesses whose intervals intersect iv, in
// ascending interval order. This is get_intersecting_accesses of
// Algorithm 1.
func (t *Tree) Stab(iv interval.Interval) []access.Access {
	var out []access.Access
	t.VisitStab(iv, func(a access.Access) bool {
		out = append(out, a)
		return true
	})
	return out
}

// VisitStab calls fn for each stored access intersecting iv in ascending
// interval order, stopping early if fn returns false. It reports whether
// the visit ran to completion.
func (t *Tree) VisitStab(iv interval.Interval, fn func(access.Access) bool) bool {
	return visitStab(t.root, iv, fn)
}

func visitStab(n *node, iv interval.Interval, fn func(access.Access) bool) bool {
	if n == nil || maxHi(n) < iv.Lo {
		// No interval in this subtree reaches iv.
		return true
	}
	if !visitStab(n.left, iv, fn) {
		return false
	}
	if n.acc.Intersects(iv) {
		if !fn(n.acc) {
			return false
		}
	}
	if n.acc.Lo > iv.Hi {
		// Keys right of here start after iv ends; their subtrees can
		// still only contain larger lower bounds.
		return true
	}
	return visitStab(n.right, iv, fn)
}

// StabNeighbors appends to *dst every stored access intersecting iv
// and returns the immediate boundary neighbours — the stored accesses
// ending exactly at iv.Lo-1 and starting exactly at iv.Hi+1 — when they
// exist. It is the allocation-free workhorse of the contribution's
// insertion hot path: one traversal yields everything Algorithm 1 needs
// (the race check, the fragmentation input and the merge candidates).
// dst's contents are only valid under the disjointness invariant.
func (t *Tree) StabNeighbors(iv interval.Interval, dst *[]access.Access) (left, right access.Access, hasLeft, hasRight bool) {
	wide := iv
	if wide.Lo > 0 {
		wide.Lo--
	}
	if wide.Hi+1 != 0 {
		wide.Hi++
	}
	q := &t.nb
	q.iv, q.wide, q.dst = iv, wide, dst
	q.hasLeft, q.hasRight = false, false
	t.stabNeighbors(t.root, q)
	q.dst = nil
	return q.left, q.right, q.hasLeft, q.hasRight
}

func (t *Tree) stabNeighbors(n *node, q *nbQuery) {
	if n == nil || n.maxHi < q.wide.Lo {
		return
	}
	t.stabNeighbors(n.left, q)
	if n.acc.Intersects(q.wide) {
		switch {
		case n.acc.Hi < q.iv.Lo:
			q.left = n.acc
			q.hasLeft = true
		case n.acc.Lo > q.iv.Hi:
			q.right = n.acc
			q.hasRight = true
		default:
			*q.dst = append(*q.dst, n.acc)
		}
	}
	if n.acc.Lo > q.wide.Hi {
		return
	}
	t.stabNeighbors(n.right, q)
}

// FindAt returns the stored access covering addr, if any. Under the
// disjointness invariant there is at most one.
func (t *Tree) FindAt(addr uint64) (access.Access, bool) {
	var found access.Access
	ok := !t.VisitStab(interval.At(addr), func(a access.Access) bool {
		found = a
		return false
	})
	return found, ok
}

// InOrder calls fn for every stored access in ascending interval order,
// stopping early if fn returns false.
func (t *Tree) InOrder(fn func(access.Access) bool) {
	inOrder(t.root, fn)
}

func inOrder(n *node, fn func(access.Access) bool) bool {
	if n == nil {
		return true
	}
	return inOrder(n.left, fn) && fn(n.acc) && inOrder(n.right, fn)
}

// Items returns all stored accesses in ascending interval order.
func (t *Tree) Items() []access.Access {
	out := make([]access.Access, 0, t.size)
	t.InOrder(func(a access.Access) bool {
		out = append(out, a)
		return true
	})
	return out
}

// Clear empties the tree, as RMA-Analyzer does at the end of an epoch,
// reclaiming every node onto the free list so the next epoch's
// insertions allocate nothing.
func (t *Tree) Clear() {
	t.reclaim(t.root)
	t.root = nil
	t.size = 0
}

// ReleaseFree drops the recycled-node free list, handing its nodes to
// the GC. The free list exists only to make the steady-state
// insert/delete cycle allocation-free; releasing it never touches live
// tree state, so it is safe at any point. The bounded-memory trace
// replay calls it at epoch boundaries (via store.Compact) to keep peak
// RSS flat across many resident trees, at the price of re-allocating
// nodes in the next epoch.
func (t *Tree) ReleaseFree() {
	t.free = nil
	t.freeN = 0
}

func (t *Tree) reclaim(n *node) {
	if n == nil {
		return
	}
	t.reclaim(n.left)
	t.reclaim(n.right)
	t.recycle(n)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
