// Package engine is the per-window analysis engine: the state machine
// that owns the analyzers, serialises access to them, runs the
// receiver goroutines draining notification batches, and implements
// the count-and-drain quiescence protocol the synchronisation calls
// build on (the paper's "for each window, a thread is created to
// receive all the MPI_Send").
//
// The engine is deliberately independent of the MPI simulator: the
// instrumentation layer (package internal/rma) supplies a stop channel
// and a race callback, and the engine exposes exactly the operations
// the MPI-RMA synchronisation surface needs — Notify/SendSync to feed
// a rank's receiver, WaitReceived to drain it, EpochEnd/Epoch for the
// epoch lifecycle, Analyse for origin-side and local accesses. That
// makes the whole analysis pipeline unit-testable without spinning up
// a simulated world.
package engine

import (
	"context"
	"errors"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"rmarace/internal/detector"
	"rmarace/internal/obs"
	"rmarace/internal/obs/olog"
	"rmarace/internal/obs/span"
)

// DefaultChannelCap is the per-rank notification channel capacity when
// Config.ChannelCap is zero.
const DefaultChannelCap = 1024

// ErrClosed is returned by sends after the engine has been closed.
var ErrClosed = errors.New("engine: closed")

// errStopped is returned on a stop without a StopErr callback.
var errStopped = errors.New("engine: stopped")

// Batch is one message on a rank's notification channel: a batch of
// remote accesses to analyse, or a synchronisation marker (Sync) that
// acknowledges once everything ahead of it has been processed and,
// with Release set, retires the origin's accesses first (an exclusive
// MPI_Win_unlock).
type Batch struct {
	Evs     []detector.Event
	Sync    bool
	Release bool
	Origin  int
	Ack     chan struct{}
	// Flow is the causal-edge id the origin's span tracer attached when
	// it sent the batch (0 when tracing is off); the receiver closes the
	// edge on its notif-batch span, binding the send to the analysis in
	// the exported timeline.
	Flow uint64
}

// Config assembles an Engine.
type Config struct {
	// Ranks is the number of per-rank analyzer/receiver pairs.
	Ranks int
	// NewAnalyzer builds the analyzer owned by the given rank.
	NewAnalyzer func(rank int) detector.Analyzer
	// ChannelCap bounds each rank's notification channel
	// (DefaultChannelCap when zero). A full channel never drops a
	// notification: the sender counts an overflow and blocks until the
	// receiver catches up.
	ChannelCap int
	// OnRace is called (possibly from a receiver goroutine) for every
	// race an analyzer reports. May be nil.
	OnRace func(*detector.Race)
	// Stop aborts the engine when closed: receivers exit, blocked
	// senders and waiters return StopErr. May be nil (never stops).
	Stop <-chan struct{}
	// StopErr reports why Stop fired. May be nil.
	StopErr func() error
	// Recorder receives the engine's metrics (received counts, overflow
	// backpressure, queue depths, shard busy time). Nil means disabled;
	// the hot path then pays one cached-bool branch per record site.
	Recorder obs.Recorder
	// Window names the window this engine serves; it is stamped into
	// the provenance of every race the engine surfaces.
	Window string
	// Spans receives the engine's causal spans (notification batches,
	// shard-pool drains) when non-nil; the instrumentation layer shares
	// the same tracer for its call-site spans so flows line up.
	Spans *span.Tracer
	// FlightN, when positive, keeps a per-rank flight recorder of the
	// last FlightN analysed accesses and synchronisations; a detected
	// race carries the owner's snapshot (Race.FlightLog).
	FlightN int
	// Log receives the engine's rare structured events (the first
	// notification-channel overflow of each rank); nil logs nowhere.
	// Only off-hot-path sites log, and only when the level is enabled.
	Log *slog.Logger
}

// Engine is the analysis state machine of one window across all ranks.
type Engine struct {
	cfg       Config
	analyzers []detector.Analyzer
	// anMu serialises each rank's analyzer between its receiver and the
	// rank's own origin-side/local analysis calls.
	anMu    []sync.Mutex
	notifCh []chan Batch
	// received counts processed notifications per rank (events and sync
	// markers alike), guarded by recvMu; recvCond broadcasts on every
	// update and on stop.
	recvMu   []sync.Mutex
	received []int64
	recvCond []*sync.Cond
	// epochs counts each rank's completed analysis epochs (atomic).
	// Receivers stamp every event with the owner's current count, so
	// all accesses analysed between two EpochEnd calls share an epoch
	// number even when they arrive before the owner's own LockAll.
	epochs []uint64
	// overflows counts, per rank, sends that found the notification
	// channel full and had to block (atomic). Nothing is dropped; the
	// counter makes the backpressure visible in the stats.
	overflows []int64
	// sh holds the shard worker pool of each rank whose analyzer is a
	// detector.Sharder (nil entries for serial ranks); see shardpool.go.
	sh []*rankShards
	// evFree and refFree are the engine's free lists for notification
	// batch slices and split-batch completion records. Plain buffered
	// channels: contention is two CAS-ish operations, and unlike a
	// sync.Pool nothing is dropped on GC.
	evFree  chan []detector.Event
	refFree chan *batchRef

	// rec is the metrics sink (never nil: obs.Disabled when the config
	// leaves it unset); recOn caches rec.Enabled() so disabled record
	// sites cost one branch.
	rec   obs.Recorder
	recOn bool
	// spans/spanOn follow the same discipline for the span tracer, and
	// flight holds the per-rank flight recorders (all nil when
	// Config.FlightN is zero — the nil *FlightLog is inert).
	spans  *span.Tracer
	spanOn bool
	flight []*detector.FlightLog
	// log/logOn: structured logging for rare events (never nil / cached
	// Enabled, same discipline as rec/recOn).
	log   *slog.Logger
	logOn bool

	startMu sync.Mutex
	started []bool

	closed    chan struct{}
	closeOnce sync.Once
}

// New builds an engine; receivers are started per rank with
// StartReceiver.
func New(cfg Config) *Engine {
	if cfg.ChannelCap <= 0 {
		cfg.ChannelCap = DefaultChannelCap
	}
	e := &Engine{
		cfg:       cfg,
		analyzers: make([]detector.Analyzer, cfg.Ranks),
		anMu:      make([]sync.Mutex, cfg.Ranks),
		notifCh:   make([]chan Batch, cfg.Ranks),
		recvMu:    make([]sync.Mutex, cfg.Ranks),
		received:  make([]int64, cfg.Ranks),
		recvCond:  make([]*sync.Cond, cfg.Ranks),
		epochs:    make([]uint64, cfg.Ranks),
		overflows: make([]int64, cfg.Ranks),
		started:   make([]bool, cfg.Ranks),
		sh:        make([]*rankShards, cfg.Ranks),
		evFree:    make(chan []detector.Event, cfg.ChannelCap+eventPoolSlack),
		refFree:   make(chan *batchRef, batchRefPoolCap),
		closed:    make(chan struct{}),
		rec:       obs.OrDisabled(cfg.Recorder),
		spans:     cfg.Spans,
		flight:    make([]*detector.FlightLog, cfg.Ranks),
	}
	e.recOn = e.rec.Enabled()
	e.spanOn = e.spans.Enabled()
	e.log = olog.Or(cfg.Log)
	e.logOn = e.log.Enabled(context.Background(), slog.LevelWarn)
	for r := 0; r < cfg.Ranks; r++ {
		if cfg.FlightN > 0 {
			e.flight[r] = detector.NewFlightLog(cfg.FlightN)
		}
		e.analyzers[r] = cfg.NewAnalyzer(r)
		e.notifCh[r] = make(chan Batch, cfg.ChannelCap)
		e.recvCond[r] = sync.NewCond(&e.recvMu[r])
		if top, ok := e.analyzers[r].(detector.Sharder); ok && top.NumShards() > 1 {
			e.sh[r] = e.newRankShards(top)
		}
	}
	// Wake every count-waiter when the engine stops; exit when it
	// closes so finished runs can be collected.
	go func() {
		select {
		case <-e.cfg.Stop:
		case <-e.closed:
			return
		}
		e.WakeAll()
	}()
	return e
}

// Ranks returns the number of ranks the engine serves.
func (e *Engine) Ranks() int { return len(e.analyzers) }

// StartReceiver starts rank's receiver goroutine. It is idempotent:
// re-joining a window (MPI_Win_free followed by a create under the
// same name) must not stack a second receiver on the same channel.
func (e *Engine) StartReceiver(rank int) {
	e.startMu.Lock()
	defer e.startMu.Unlock()
	if e.started[rank] {
		return
	}
	e.started[rank] = true
	if rs := e.sh[rank]; rs != nil {
		for s := range rs.ch {
			go e.shardWorker(rank, s)
		}
	}
	go e.receive(rank)
}

// receive drains rank's notification channel until the engine stops or
// closes.
func (e *Engine) receive(rank int) {
	rs := e.sh[rank]
	for {
		select {
		case b := <-e.notifCh[rank]:
			if rs != nil {
				e.processSharded(rank, rs, b)
			} else {
				e.process(rank, b)
			}
		case <-e.cfg.Stop:
			return
		case <-e.closed:
			return
		}
	}
}

// process handles one batch: sync markers acknowledge (releasing the
// origin first when asked); event batches are stamped with the owner's
// epoch and fed to the analyzer in one serialised call.
func (e *Engine) process(rank int, b Batch) {
	if b.Sync {
		if b.Release {
			e.anMu[rank].Lock()
			e.analyzers[rank].Release(b.Origin)
			e.anMu[rank].Unlock()
			e.flight[rank].Mark(detector.FlightRelease, b.Origin)
		} else {
			e.flight[rank].Mark(detector.FlightSync, b.Origin)
		}
		if b.Ack != nil {
			close(b.Ack)
		}
		e.addReceived(rank, 1)
		return
	}
	epoch := atomic.LoadUint64(&e.epochs[rank])
	for i := range b.Evs {
		b.Evs[i].Acc.Epoch = epoch
	}
	if e.flight[rank] != nil {
		for i := range b.Evs {
			e.flight[rank].Access(b.Evs[i].Acc)
		}
	}
	var spanStart int64
	if e.spanOn {
		spanStart = e.spans.Now()
	}
	e.anMu[rank].Lock()
	race := detector.AccessBatch(e.analyzers[rank], b.Evs)
	e.anMu[rank].Unlock()
	if e.spanOn {
		e.recordBatchSpan(rank, spanStart, int64(len(b.Evs)), int64(epoch), b.Flow)
	}
	if race != nil {
		e.raceFound(rank, race)
	}
	n := int64(len(b.Evs))
	e.PutEventBuf(b.Evs)
	e.addReceived(rank, n)
}

// recordBatchSpan emits the engine-side notif-batch span, closing the
// batch's causal flow when the origin opened one.
func (e *Engine) recordBatchSpan(rank int, start, events, epoch int64, flow uint64) {
	rec := span.Record{
		Kind: span.KindNotifBatch, Tid: span.TidEngine,
		Start: start, Dur: e.spans.Now() - start,
		A: events, B: epoch,
	}
	if flow != 0 {
		rec.Flow, rec.Phase = flow, span.FlowFinish
	}
	e.spans.Record(rank, rec)
}

// raceFound stamps the engine's share of the race provenance — the
// owning rank and the window name, leaving an already-stamped shard
// alone — then counts it and hands it to the race callback.
func (e *Engine) raceFound(rank int, race *detector.Race) {
	p := race.EnsureProv()
	p.Owner = rank
	if p.Window == "" {
		p.Window = e.cfg.Window
	}
	if race.FlightLog == nil {
		race.FlightLog = e.flight[rank].Snapshot()
	}
	if e.recOn {
		e.rec.Add(obs.Races, rank, 1)
	}
	if e.cfg.OnRace != nil {
		e.cfg.OnRace(race)
	}
}

func (e *Engine) addReceived(rank int, n int64) {
	e.recvMu[rank].Lock()
	e.received[rank] += n
	e.recvCond[rank].Broadcast()
	e.recvMu[rank].Unlock()
	if e.recOn {
		e.rec.Add(obs.EngineReceived, rank, n)
	}
}

// Notify enqueues a batch of remote accesses for rank's receiver. The
// batch is handed off: the caller must not reuse the slice. When the
// channel is full the overflow counter is bumped and the send blocks
// (backpressure) until the receiver drains, the engine stops, or it
// closes — a notification is never silently dropped.
func (e *Engine) Notify(rank int, evs []detector.Event) error {
	return e.NotifyFlow(rank, evs, 0)
}

// NotifyFlow is Notify carrying the origin's causal-flow id, so the
// receiver's notif-batch span closes the edge the origin's notif-send
// span opened. Flow 0 means no tracing.
func (e *Engine) NotifyFlow(rank int, evs []detector.Event, flow uint64) error {
	if len(evs) == 0 {
		return nil
	}
	if e.recOn {
		e.rec.Observe(obs.NotifBatchLen, rank, int64(len(evs)))
	}
	return e.send(rank, Batch{Evs: evs, Flow: flow})
}

// SendSync enqueues a synchronisation marker behind everything already
// sent to rank. ack is closed once the marker is processed; release
// additionally retires origin's stored accesses first.
func (e *Engine) SendSync(rank, origin int, release bool, ack chan struct{}) error {
	return e.send(rank, Batch{Sync: true, Release: release, Origin: origin, Ack: ack})
}

func (e *Engine) send(rank int, b Batch) error {
	select {
	case e.notifCh[rank] <- b:
		if e.recOn {
			e.rec.SetMax(obs.EngineQueueDepth, rank, int64(len(e.notifCh[rank])))
		}
		return nil
	default:
	}
	if atomic.AddInt64(&e.overflows[rank], 1) == 1 && e.logOn {
		// First overflow of this rank only: backpressure is worth one
		// line, not one per blocked send.
		e.log.Warn("notification channel full, sender blocking",
			"window", e.cfg.Window, "rank", rank, "cap", cap(e.notifCh[rank]))
	}
	if e.recOn {
		e.rec.Add(obs.EngineOverflows, rank, 1)
		e.rec.SetMax(obs.EngineQueueDepth, rank, int64(cap(e.notifCh[rank])))
		start := time.Now()
		defer func() { e.rec.Add(obs.EngineBlockNanos, rank, int64(time.Since(start))) }()
	}
	select {
	case e.notifCh[rank] <- b:
		return nil
	case <-e.cfg.Stop:
		return e.stopErr()
	case <-e.closed:
		return ErrClosed
	}
}

func (e *Engine) stopErr() error {
	if e.cfg.StopErr != nil {
		if err := e.cfg.StopErr(); err != nil {
			return err
		}
	}
	return errStopped
}

// stopped reports whether the engine's stop channel has fired.
func (e *Engine) stoppedErr() error {
	select {
	case <-e.cfg.Stop:
		return e.stopErr()
	default:
		return nil
	}
}

// WaitReceived blocks until rank has processed at least expected
// notifications (counting events and sync markers), or the engine
// stops or closes, in which case the corresponding error is returned.
func (e *Engine) WaitReceived(rank int, expected int64) error {
	e.recvMu[rank].Lock()
	for e.received[rank] < expected && e.stoppedErr() == nil && !e.isClosed() {
		e.recvCond[rank].Wait()
	}
	satisfied := e.received[rank] >= expected
	e.recvMu[rank].Unlock()
	if err := e.stoppedErr(); err != nil {
		return err
	}
	if !satisfied {
		return ErrClosed
	}
	return nil
}

func (e *Engine) isClosed() bool {
	select {
	case <-e.closed:
		return true
	default:
		return false
	}
}

// Received returns how many notifications rank has processed.
func (e *Engine) Received(rank int) int64 {
	e.recvMu[rank].Lock()
	defer e.recvMu[rank].Unlock()
	return e.received[rank]
}

// WakeAll broadcasts every rank's receive condition, releasing
// WaitReceived callers so they can observe a stop.
func (e *Engine) WakeAll() {
	for r := range e.recvCond {
		e.recvMu[r].Lock()
		e.recvCond[r].Broadcast()
		e.recvMu[r].Unlock()
	}
}

// Analyse feeds one access (origin-side or local) through rank's
// analyzer under the serialisation lock and reports any race through
// the callback as well as the return value.
func (e *Engine) Analyse(rank int, ev detector.Event) *detector.Race {
	e.flight[rank].Access(ev.Acc)
	if rs := e.sh[rank]; rs != nil {
		return e.analyseSharded(rank, rs, ev)
	}
	e.anMu[rank].Lock()
	race := e.analyzers[rank].Access(ev)
	e.anMu[rank].Unlock()
	if race != nil {
		e.raceFound(rank, race)
	}
	return race
}

// EpochEnd completes rank's analysis epoch: the analyzer retires its
// state and the epoch counter future accesses are stamped with moves
// on. Callers drain first (WaitReceived).
func (e *Engine) EpochEnd(rank int) {
	e.flight[rank].Mark(detector.FlightEpochEnd, rank)
	if rs := e.sh[rank]; rs != nil {
		rs.lockAll()
		rs.top.EpochEnd()
		atomic.AddUint64(&e.epochs[rank], 1)
		rs.unlockAll()
		return
	}
	e.anMu[rank].Lock()
	e.analyzers[rank].EpochEnd()
	atomic.AddUint64(&e.epochs[rank], 1)
	e.anMu[rank].Unlock()
}

// Epoch returns rank's completed-epoch count, the number stamped onto
// accesses analysed now.
func (e *Engine) Epoch(rank int) uint64 { return atomic.LoadUint64(&e.epochs[rank]) }

// Flush observes an MPI_Win_flush by rank.
func (e *Engine) Flush(rank int) {
	e.flight[rank].Mark(detector.FlightFlush, rank)
	if rs := e.sh[rank]; rs != nil {
		rs.lockAll()
		rs.top.Flush(rank)
		rs.unlockAll()
		return
	}
	e.anMu[rank].Lock()
	e.analyzers[rank].Flush(rank)
	e.anMu[rank].Unlock()
}

// WithAnalyzer runs fn with rank's analyzer under the serialisation
// lock, for statistics snapshots.
func (e *Engine) WithAnalyzer(rank int, fn func(detector.Analyzer)) {
	if rs := e.sh[rank]; rs != nil {
		rs.lockAll()
		fn(rs.top)
		rs.unlockAll()
		return
	}
	e.anMu[rank].Lock()
	fn(e.analyzers[rank])
	e.anMu[rank].Unlock()
}

// Overflows returns how many sends found rank's channel full and had
// to block.
func (e *Engine) Overflows(rank int) int64 { return atomic.LoadInt64(&e.overflows[rank]) }

// TotalOverflows sums Overflows over all ranks.
func (e *Engine) TotalOverflows() int64 {
	var total int64
	for r := range e.overflows {
		total += atomic.LoadInt64(&e.overflows[r])
	}
	return total
}

// Close shuts the engine down: receivers exit, blocked senders return
// ErrClosed, waiters wake. Safe to call more than once and safe
// against concurrent in-flight sends (no channel is ever closed).
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.closed) })
	e.WakeAll()
}
