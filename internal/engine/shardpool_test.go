package engine

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"rmarace/internal/access"
	"rmarace/internal/core"
	"rmarace/internal/detector"
	"rmarace/internal/interval"
)

// shardEvs generates a reproducible random read-only stream over a tiny
// granule so batches constantly straddle shard boundaries.
func shardEvs(seed int64, n int, ranks int) []detector.Event {
	rng := rand.New(rand.NewSource(seed))
	evs := make([]detector.Event, n)
	for i := range evs {
		lo := uint64(rng.Intn(64 * 64))
		ln := uint64(1 + rng.Intn(3*64))
		evs[i] = detector.Event{
			Acc: access.Access{
				Interval: interval.Interval{Lo: lo, Hi: lo + ln - 1},
				Type:     access.RMARead,
				Rank:     rng.Intn(ranks),
				Debug:    access.Debug{File: "shard.c", Line: 1 + rng.Intn(4)},
			},
			Time:     uint64(i + 1),
			CallTime: uint64(i + 1),
		}
	}
	return evs
}

func newShardedEngine(shards int, onRace func(*detector.Race)) *Engine {
	return New(Config{
		Ranks: 1,
		NewAnalyzer: func(int) detector.Analyzer {
			return core.Build(core.WithShards(shards), core.WithShardGranule(64))
		},
		ChannelCap: 64,
		OnRace:     onRace,
	})
}

// TestShardedPipelineEquivalence pushes the same stream through a
// serial engine and an 8-shard engine and compares the canonicalised
// stored sets after the drain — the end-to-end form of the core
// equivalence tests, covering routing, the credit accounting and the
// worker pool.
func TestShardedPipelineEquivalence(t *testing.T) {
	evs := shardEvs(11, 2048, 1)
	run := func(shards int) []access.Access {
		e := newShardedEngine(shards, nil)
		e.StartReceiver(0)
		defer e.Close()
		var sent int64
		for off := 0; off < len(evs); off += 32 {
			batch := append(e.GetEventBuf(), evs[off:off+32]...)
			if err := e.Notify(0, batch); err != nil {
				t.Fatal(err)
			}
			sent += 32
		}
		if err := e.WaitReceived(0, sent); err != nil {
			t.Fatal(err)
		}
		var items []access.Access
		e.WithAnalyzer(0, func(a detector.Analyzer) {
			items = a.(interface{ Items() []access.Access }).Items()
		})
		return access.Merge(items)
	}
	serial, sharded := run(1), run(8)
	if len(serial) == 0 {
		t.Fatal("serial run stored nothing")
	}
	if len(serial) != len(sharded) {
		t.Fatalf("stored sets diverge: serial %d items, sharded %d", len(serial), len(sharded))
	}
	for i := range serial {
		if serial[i] != sharded[i] {
			t.Fatalf("item %d: serial %v, sharded %v", i, serial[i], sharded[i])
		}
	}
}

// TestShardedSyncBarrier proves the flush-token barrier: a sync marker
// with Release must not acknowledge before every previously notified
// event has been analysed, and the release must retire the origin's
// accesses across all shards.
func TestShardedSyncBarrier(t *testing.T) {
	e := newShardedEngine(8, nil)
	e.StartReceiver(0)
	defer e.Close()

	evs := shardEvs(23, 512, 1)
	var sent int64
	for off := 0; off < len(evs); off += 16 {
		batch := append(e.GetEventBuf(), evs[off:off+16]...)
		if err := e.Notify(0, batch); err != nil {
			t.Fatal(err)
		}
		sent += 16
	}
	ack := make(chan struct{})
	if err := e.SendSync(0, 0, true, ack); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ack:
	case <-time.After(10 * time.Second):
		t.Fatal("sync marker never acknowledged")
	}
	// The ack implies the barrier completed: every event before the
	// marker must already be credited (events + 1 marker)...
	if got := e.Received(0); got != sent+1 {
		t.Fatalf("Received = %d at ack, want %d", got, sent+1)
	}
	// ...and the release must have emptied every shard (all accesses
	// came from rank 0).
	e.WithAnalyzer(0, func(a detector.Analyzer) {
		if n := a.Nodes(); n != 0 {
			t.Fatalf("release left %d nodes across shards", n)
		}
	})
}

// TestShardedRaceCallback plants a write-write conflict and checks the
// race surfaces through OnRace from a shard worker.
func TestShardedRaceCallback(t *testing.T) {
	var got atomic.Pointer[detector.Race]
	e := newShardedEngine(4, func(r *detector.Race) { got.CompareAndSwap(nil, r) })
	e.StartReceiver(0)
	defer e.Close()

	mk := func(rank int, time uint64, line int) detector.Event {
		return detector.Event{
			Acc: access.Access{
				// Straddles a granule boundary: the conflict lands in a
				// split piece.
				Interval: interval.Interval{Lo: 60, Hi: 70},
				Type:     access.RMAWrite,
				Rank:     rank,
				Debug:    access.Debug{File: "race.c", Line: line},
			},
			Time: time, CallTime: time,
		}
	}
	_ = e.Notify(0, append(e.GetEventBuf(), mk(0, 1, 1)))
	_ = e.Notify(0, append(e.GetEventBuf(), mk(1, 2, 2)))
	if err := e.WaitReceived(0, 2); err != nil {
		t.Fatal(err)
	}
	if got.Load() == nil {
		t.Fatal("planted write-write race not reported")
	}
}

// TestShardedCloseNoGoroutineLeak closes an engine with in-flight
// sharded notifications and verifies the receiver, the stop-watcher and
// all shard workers exit.
func TestShardedCloseNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	e := newShardedEngine(8, nil)
	e.StartReceiver(0)
	evs := shardEvs(31, 256, 1)
	for off := 0; off < len(evs); off += 16 {
		batch := append(e.GetEventBuf(), evs[off:off+16]...)
		if err := e.Notify(0, batch); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()
	e.Close() // double close stays harmless

	deadline := time.After(10 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("goroutines leaked after Close: %d before, %d after", before, runtime.NumGoroutine())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestShardedEpochStamping checks the router stamps events with the
// owner's epoch before splitting, exactly like the serial path.
func TestShardedEpochStamping(t *testing.T) {
	e := newShardedEngine(4, nil)
	e.StartReceiver(0)
	defer e.Close()

	send := func(lo uint64, tm uint64) {
		ev := detector.Event{
			Acc: access.Access{
				Interval: interval.Interval{Lo: lo, Hi: lo + 200}, // straddles granules
				Type:     access.RMARead,
				Rank:     0,
				Debug:    access.Debug{File: "epoch.c", Line: 1},
			},
			Time: tm, CallTime: tm,
		}
		if err := e.Notify(0, append(e.GetEventBuf(), ev)); err != nil {
			t.Fatal(err)
		}
	}
	send(0, 1)
	if err := e.WaitReceived(0, 1); err != nil {
		t.Fatal(err)
	}
	e.EpochEnd(0)
	send(4096, 2)
	if err := e.WaitReceived(0, 2); err != nil {
		t.Fatal(err)
	}
	e.WithAnalyzer(0, func(a detector.Analyzer) {
		for _, it := range a.(interface{ Items() []access.Access }).Items() {
			if it.Epoch != 1 {
				t.Fatalf("post-EpochEnd access stamped epoch %d, want 1 (item %v)", it.Epoch, it)
			}
		}
	})
}
