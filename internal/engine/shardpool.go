// Shard worker pool: when a rank's analyzer is a detector.Sharder, the
// rank's receiver stops analysing in-line and becomes a router — it
// splits each arriving batch at shard boundaries and hands the per-shard
// sub-batches to a bounded pool of workers, one goroutine per shard,
// each serialising its own sub-analyzer. The count-and-drain quiescence
// protocol is preserved exactly:
//
//   - An event batch credits the rank's received counter only once every
//     one of its shard pieces has been analysed. A batch landing in a
//     single shard carries its credit directly; a batch split across
//     shards shares a batchRef whose atomic countdown lets the last
//     finishing worker add the credit. Either way the sender's expected
//     count (original events, not pieces) is matched and WaitReceived
//     cannot return while any piece is still queued or in flight.
//   - A sync marker is a barrier: before acknowledging, the receiver
//     sends a flush token down every shard channel and waits for all of
//     them to bounce back. Channels are FIFO, so the bounce proves every
//     piece enqueued before the marker has been analysed — the same
//     "everything ahead of the marker is done" guarantee the serial path
//     gives — and only then does Release/Ack/credit happen.
//
// Workers never send to anything but the (buffered, non-blocking) flush
// reply channel, so they cannot deadlock against the router and exit
// promptly on stop/close.
package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"rmarace/internal/detector"
	"rmarace/internal/obs"
	"rmarace/internal/obs/span"
)

// rankShards is one sharded rank's pool state.
type rankShards struct {
	top  detector.Sharder
	subs []detector.Analyzer
	// mu serialises each sub-analyzer between its worker and the rank's
	// origin-side Analyse calls; lifecycle operations take all of them.
	mu []sync.Mutex
	ch []chan shardMsg
	// out is the router's reusable partition table; a non-nil entry is a
	// pooled buffer being filled, handed off (and nilled) at dispatch.
	out [][]detector.Event
	// emit appends a routed piece to its shard's out buffer. Built once
	// so the per-batch RouteEach calls allocate no closure.
	emit func(int, detector.Event)
}

// shardMsg is one message on a shard channel: a sub-batch to analyse, or
// a flush token (flush != nil) the worker bounces straight back.
type shardMsg struct {
	evs []detector.Event
	// credit is the received-counter credit this message carries when it
	// is a whole batch's only piece; 0 when ref carries it instead.
	credit int64
	// ref is the shared completion of a batch split across shards.
	ref   *batchRef
	flush chan<- struct{}
}

// batchRef counts down the outstanding shard pieces of one split batch;
// the worker that zeroes pending credits the full batch.
type batchRef struct {
	pending int32
	credit  int64
}

// minShardChanCap floors each shard channel's capacity.
const minShardChanCap = 16

// newRankShards builds the pool state for one sharded rank. Workers are
// started by StartReceiver alongside the rank's router.
func (e *Engine) newRankShards(top detector.Sharder) *rankShards {
	k := top.NumShards()
	rs := &rankShards{
		top:  top,
		subs: make([]detector.Analyzer, k),
		mu:   make([]sync.Mutex, k),
		ch:   make([]chan shardMsg, k),
		out:  make([][]detector.Event, k),
	}
	chCap := e.cfg.ChannelCap / k
	if chCap < minShardChanCap {
		chCap = minShardChanCap
	}
	for i := 0; i < k; i++ {
		rs.subs[i] = top.ShardAnalyzer(i)
		rs.ch[i] = make(chan shardMsg, chCap)
	}
	rs.emit = func(s int, piece detector.Event) {
		if rs.out[s] == nil {
			rs.out[s] = e.GetEventBuf()
		}
		rs.out[s] = append(rs.out[s], piece)
	}
	return rs
}

func (rs *rankShards) lockAll() {
	for i := range rs.mu {
		rs.mu[i].Lock()
	}
}

func (rs *rankShards) unlockAll() {
	for i := len(rs.mu) - 1; i >= 0; i-- {
		rs.mu[i].Unlock()
	}
}

// processSharded is the router-side process(): it partitions event
// batches across the shard channels and turns sync markers into flush
// barriers.
func (e *Engine) processSharded(rank int, rs *rankShards, b Batch) {
	if b.Sync {
		if !e.drainShards(rank, rs) {
			return // stopping or closed; waiters are woken elsewhere
		}
		if b.Release {
			rs.lockAll()
			rs.top.Release(b.Origin)
			rs.unlockAll()
			e.flight[rank].Mark(detector.FlightRelease, b.Origin)
		} else {
			e.flight[rank].Mark(detector.FlightSync, b.Origin)
		}
		if b.Ack != nil {
			close(b.Ack)
		}
		e.addReceived(rank, 1)
		return
	}
	epoch := atomic.LoadUint64(&e.epochs[rank])
	for i := range b.Evs {
		b.Evs[i].Acc.Epoch = epoch
	}
	if e.flight[rank] != nil {
		for i := range b.Evs {
			e.flight[rank].Access(b.Evs[i].Acc)
		}
	}
	var spanStart int64
	if e.spanOn {
		spanStart = e.spans.Now()
	}
	for i := range b.Evs {
		rs.top.RouteEach(b.Evs[i], rs.emit)
	}
	// The sharded notif-batch span covers the router's work (the
	// analysis itself runs asynchronously in the shard workers); it
	// still closes the origin's causal flow, which is what binds the
	// send to its processing in the timeline.
	if e.spanOn {
		defer e.recordBatchSpan(rank, spanStart, int64(len(b.Evs)), int64(epoch), b.Flow)
	}
	credit := int64(len(b.Evs))
	e.PutEventBuf(b.Evs)
	touched, last := 0, 0
	for s := range rs.out {
		if len(rs.out[s]) > 0 {
			touched++
			last = s
		}
	}
	switch touched {
	case 0:
		e.addReceived(rank, credit)
	case 1:
		// Fast path: the whole batch landed in one shard, so the message
		// carries the credit itself and no batchRef is needed.
		evs := rs.out[last]
		rs.out[last] = nil
		e.dispatch(rank, rs, last, shardMsg{evs: evs, credit: credit})
	default:
		ref := e.getBatchRef()
		ref.pending = int32(touched)
		ref.credit = credit
		for s := range rs.out {
			if len(rs.out[s]) == 0 {
				continue
			}
			evs := rs.out[s]
			rs.out[s] = nil
			e.dispatch(rank, rs, s, shardMsg{evs: evs, ref: ref})
		}
	}
}

// dispatch enqueues m on shard s's channel with the same
// overflow-counting backpressure as the rank channels: a full channel
// blocks the router (never drops) until the worker drains or the engine
// stops/closes.
func (e *Engine) dispatch(rank int, rs *rankShards, s int, m shardMsg) {
	select {
	case rs.ch[s] <- m:
		if e.recOn {
			e.rec.SetMax(obs.ShardQueueDepth, s, int64(len(rs.ch[s])))
		}
		return
	default:
	}
	atomic.AddInt64(&e.overflows[rank], 1)
	if e.recOn {
		e.rec.Add(obs.EngineOverflows, rank, 1)
		e.rec.SetMax(obs.ShardQueueDepth, s, int64(cap(rs.ch[s])))
		start := time.Now()
		defer func() { e.rec.Add(obs.EngineBlockNanos, rank, int64(time.Since(start))) }()
	}
	select {
	case rs.ch[s] <- m:
	case <-e.cfg.Stop:
	case <-e.closed:
	}
}

// drainShards sends a flush token down every shard channel and waits for
// all of them to bounce back, proving every previously enqueued piece
// has been analysed. It reports false if the engine stopped or closed
// before the barrier completed.
func (e *Engine) drainShards(rank int, rs *rankShards) bool {
	var spanStart int64
	if e.spanOn {
		spanStart = e.spans.Now()
		defer func() {
			e.spans.Record(rank, span.Record{
				Kind: span.KindShardDrain, Tid: span.TidEngine,
				Start: spanStart, Dur: e.spans.Now() - spanStart,
				A: int64(len(rs.ch)),
			})
		}()
	}
	done := make(chan struct{}, len(rs.ch))
	for s := range rs.ch {
		select {
		case rs.ch[s] <- shardMsg{flush: done}:
		case <-e.cfg.Stop:
			return false
		case <-e.closed:
			return false
		}
	}
	for range rs.ch {
		select {
		case <-done:
		case <-e.cfg.Stop:
			return false
		case <-e.closed:
			return false
		}
	}
	return true
}

// shardWorker drains shard s of rank until the engine stops or closes.
func (e *Engine) shardWorker(rank, s int) {
	rs := e.sh[rank]
	for {
		select {
		case m := <-rs.ch[s]:
			e.runShardMsg(rank, rs, s, m)
		case <-e.cfg.Stop:
			return
		case <-e.closed:
			return
		}
	}
}

func (e *Engine) runShardMsg(rank int, rs *rankShards, s int, m shardMsg) {
	if m.flush != nil {
		m.flush <- struct{}{} // buffered to pool size; never blocks
		return
	}
	var start time.Time
	if e.recOn {
		start = time.Now()
	}
	rs.mu[s].Lock()
	race := detector.AccessBatch(rs.subs[s], m.evs)
	rs.mu[s].Unlock()
	if e.recOn {
		e.rec.Add(obs.ShardBusyNanos, s, int64(time.Since(start)))
		e.rec.Add(obs.ShardBatches, s, 1)
	}
	if race != nil {
		race.EnsureProv().Shard = s
		e.raceFound(rank, race)
	}
	e.PutEventBuf(m.evs)
	if m.ref != nil {
		if atomic.AddInt32(&m.ref.pending, -1) == 0 {
			credit := m.ref.credit
			e.putBatchRef(m.ref)
			e.addReceived(rank, credit)
		}
	} else {
		e.addReceived(rank, m.credit)
	}
}

// analyseSharded is the origin-side Analyse for a sharded rank: pieces
// go straight to their sub-analyzers under the per-shard locks (workers
// may be running concurrently on other shards); the first race wins.
func (e *Engine) analyseSharded(rank int, rs *rankShards, ev detector.Event) *detector.Race {
	var race *detector.Race
	rs.top.RouteEach(ev, func(s int, piece detector.Event) {
		if race != nil {
			return
		}
		rs.mu[s].Lock()
		race = rs.subs[s].Access(piece)
		rs.mu[s].Unlock()
		if race != nil {
			race.EnsureProv().Shard = s
		}
	})
	if race != nil {
		e.raceFound(rank, race)
	}
	return race
}

// GetEventBuf takes a reusable event slice (length 0) from the engine's
// pool, for callers assembling a Notify batch; the engine recycles the
// slice after analysis. Falls back to the process-wide pool (the
// package-level GetEventBuf), so buffers cycle between engines and the
// streaming trace replay too.
func (e *Engine) GetEventBuf() []detector.Event {
	select {
	case b := <-e.evFree:
		return b
	default:
		return GetEventBuf()
	}
}

// PutEventBuf returns an event slice to the pool. The engine calls it on
// every analysed batch, so slices cycle between the instrumentation
// layer's notification assembly and the analysis side without
// reallocating in steady state. A full per-engine pool overflows into
// the process-wide pool instead of dropping the slice to the GC.
func (e *Engine) PutEventBuf(evs []detector.Event) {
	if cap(evs) == 0 {
		return
	}
	select {
	case e.evFree <- evs[:0]:
	default:
		PutEventBuf(evs)
	}
}

// sharedEvFree is the process-wide event-buffer free list behind the
// package-level GetEventBuf/PutEventBuf: the same pooled batch slices
// the engines' notification pipelines cycle, shared with callers that
// batch events outside any engine (the streaming trace replay). A
// buffered channel, like the per-engine pools: contention is two
// CAS-ish operations and nothing is dropped on GC.
var sharedEvFree = make(chan []detector.Event, 256)

// GetEventBuf takes a reusable event slice (length 0) from the
// process-wide pool; plain make when the pool is empty.
func GetEventBuf() []detector.Event {
	select {
	case b := <-sharedEvFree:
		return b
	default:
		return make([]detector.Event, 0, defaultEventBufCap)
	}
}

// PutEventBuf returns an event slice to the process-wide pool.
func PutEventBuf(evs []detector.Event) {
	if cap(evs) == 0 {
		return
	}
	select {
	case sharedEvFree <- evs[:0]:
	default: // pool full; let the GC have it
	}
}

// defaultEventBufCap sizes fresh pool slices to hold a typical
// notification batch without growing.
const defaultEventBufCap = 128

// eventPoolSlack pads the free-slice pool beyond the channel capacity:
// up to ChannelCap batches sit in a rank's channel (plus a few in the
// shard workers' hands), and the pool must be able to hold the whole
// population or steady-state Gets miss and reallocate.
const eventPoolSlack = 64

// batchRefPoolCap bounds the batchRef pool.
const batchRefPoolCap = 128

func (e *Engine) getBatchRef() *batchRef {
	select {
	case r := <-e.refFree:
		return r
	default:
		return &batchRef{}
	}
}

func (e *Engine) putBatchRef(r *batchRef) {
	r.pending, r.credit = 0, 0
	select {
	case e.refFree <- r:
	default:
	}
}
