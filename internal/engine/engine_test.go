package engine

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rmarace/internal/access"
	"rmarace/internal/detector"
	"rmarace/internal/interval"
)

// stubAnalyzer records everything it is fed; an optional gate blocks
// Access so tests can hold the receiver mid-batch.
type stubAnalyzer struct {
	mu       sync.Mutex
	events   []detector.Event
	released []int
	epochs   int
	gate     chan struct{}
	raceAt   uint64 // Time value that triggers a race report
}

func (s *stubAnalyzer) Name() string { return "stub" }

func (s *stubAnalyzer) Access(ev detector.Event) *detector.Race {
	if s.gate != nil {
		<-s.gate
	}
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
	if s.raceAt != 0 && ev.Time == s.raceAt {
		return &detector.Race{Cur: ev.Acc}
	}
	return nil
}

func (s *stubAnalyzer) EpochEnd() {
	s.mu.Lock()
	s.epochs++
	s.mu.Unlock()
}

func (s *stubAnalyzer) Flush(int) {}

func (s *stubAnalyzer) Release(rank int) {
	s.mu.Lock()
	s.released = append(s.released, rank)
	s.mu.Unlock()
}

func (s *stubAnalyzer) Nodes() int       { return 0 }
func (s *stubAnalyzer) MaxNodes() int    { return 0 }
func (s *stubAnalyzer) Accesses() uint64 { return 0 }

func (s *stubAnalyzer) snapshot() []detector.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]detector.Event, len(s.events))
	copy(out, s.events)
	return out
}

func ev(lo, n uint64, t uint64) detector.Event {
	return detector.Event{
		Acc:  access.Access{Interval: interval.Span(lo, n), Type: access.RMAWrite, Rank: 1},
		Time: t,
	}
}

// within fails the test if fn does not return inside d — the deadlock
// guard for the quiescence-protocol tests.
func within(t *testing.T, d time.Duration, what string, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() { fn(); close(done) }()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatalf("timed out (%v): %s", d, what)
	}
}

func newTestEngine(t *testing.T, ranks, channelCap int, stubs []*stubAnalyzer, opt func(*Config)) *Engine {
	t.Helper()
	cfg := Config{
		Ranks:       ranks,
		ChannelCap:  channelCap,
		NewAnalyzer: func(r int) detector.Analyzer { return stubs[r] },
	}
	if opt != nil {
		opt(&cfg)
	}
	e := New(cfg)
	t.Cleanup(e.Close)
	for r := 0; r < ranks; r++ {
		e.StartReceiver(r)
	}
	return e
}

func TestNotifyBatchesAndWaitReceived(t *testing.T) {
	stub := &stubAnalyzer{}
	e := newTestEngine(t, 1, 8, []*stubAnalyzer{stub}, nil)

	if err := e.Notify(0, []detector.Event{ev(0, 8, 1), ev(8, 8, 2)}); err != nil {
		t.Fatal(err)
	}
	if err := e.Notify(0, []detector.Event{ev(16, 8, 3)}); err != nil {
		t.Fatal(err)
	}
	within(t, 5*time.Second, "WaitReceived(3)", func() {
		if err := e.WaitReceived(0, 3); err != nil {
			t.Error(err)
		}
	})
	if got := e.Received(0); got != 3 {
		t.Fatalf("Received = %d, want 3", got)
	}
	if got := len(stub.snapshot()); got != 3 {
		t.Fatalf("analyzer saw %d events, want 3", got)
	}
}

func TestEpochStamping(t *testing.T) {
	stub := &stubAnalyzer{}
	e := newTestEngine(t, 1, 8, []*stubAnalyzer{stub}, nil)

	if err := e.Notify(0, []detector.Event{ev(0, 8, 1), ev(8, 8, 2)}); err != nil {
		t.Fatal(err)
	}
	within(t, 5*time.Second, "drain epoch 0", func() { _ = e.WaitReceived(0, 2) })
	e.EpochEnd(0)
	if got := e.Epoch(0); got != 1 {
		t.Fatalf("Epoch = %d, want 1", got)
	}
	if err := e.Notify(0, []detector.Event{ev(16, 8, 3)}); err != nil {
		t.Fatal(err)
	}
	within(t, 5*time.Second, "drain epoch 1", func() { _ = e.WaitReceived(0, 3) })

	events := stub.snapshot()
	wantEpochs := []uint64{0, 0, 1}
	for i, w := range wantEpochs {
		if events[i].Acc.Epoch != w {
			t.Errorf("event %d stamped epoch %d, want %d", i, events[i].Acc.Epoch, w)
		}
	}
	if stub.epochs != 1 {
		t.Errorf("analyzer EpochEnd ran %d times, want 1", stub.epochs)
	}
}

func TestSyncMarkerReleasesAndAcks(t *testing.T) {
	stub := &stubAnalyzer{}
	e := newTestEngine(t, 1, 8, []*stubAnalyzer{stub}, nil)

	ack := make(chan struct{})
	if err := e.SendSync(0, 3, true, ack); err != nil {
		t.Fatal(err)
	}
	within(t, 5*time.Second, "sync ack", func() { <-ack })
	if got := e.Received(0); got != 1 {
		t.Fatalf("Received = %d, want 1 (marker counts)", got)
	}
	stub.mu.Lock()
	defer stub.mu.Unlock()
	if len(stub.released) != 1 || stub.released[0] != 3 {
		t.Fatalf("released = %v, want [3]", stub.released)
	}
}

// TestOverflowBackpressure is the regression test for the silent
// channel-full fallback: a burst larger than the channel capacity must
// neither drop a notification nor deadlock, and the backpressure must
// show up in the overflow counter.
func TestOverflowBackpressure(t *testing.T) {
	gate := make(chan struct{})
	stub := &stubAnalyzer{gate: gate}
	e := newTestEngine(t, 1, 2, []*stubAnalyzer{stub}, nil)

	const n = 20
	sendErr := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := e.Notify(0, []detector.Event{ev(uint64(i)*8, 8, uint64(i+1))}); err != nil {
				sendErr <- err
				return
			}
		}
		sendErr <- nil
	}()

	// The receiver holds one batch at the gate, the channel buffers two
	// more, so the sender must hit the overflow path.
	within(t, 5*time.Second, "overflow to register", func() {
		for e.Overflows(0) == 0 {
			time.Sleep(time.Millisecond)
		}
	})

	close(gate) // let the receiver drain everything
	within(t, 5*time.Second, "drain after overflow", func() {
		if err := e.WaitReceived(0, n); err != nil {
			t.Error(err)
		}
	})
	if err := <-sendErr; err != nil {
		t.Fatalf("Notify: %v", err)
	}
	if got := e.Received(0); got != n {
		t.Fatalf("Received = %d, want %d (nothing may be dropped)", got, n)
	}
	if got := len(stub.snapshot()); got != n {
		t.Fatalf("analyzer saw %d events, want %d", got, n)
	}
	if e.TotalOverflows() == 0 {
		t.Fatal("overflow counter did not register the full channel")
	}
}

// TestStartReceiverIdempotent guards the window-name-reuse path: a
// second StartReceiver for the same rank must not stack a second
// goroutine draining the same channel.
func TestStartReceiverIdempotent(t *testing.T) {
	gate := make(chan struct{})
	stub := &stubAnalyzer{gate: gate}
	e := newTestEngine(t, 1, 8, []*stubAnalyzer{stub}, nil)
	e.StartReceiver(0) // second start: must be a no-op

	// With a single receiver, the second batch stays queued while the
	// first is held at the gate.
	_ = e.Notify(0, []detector.Event{ev(0, 8, 1)})
	_ = e.Notify(0, []detector.Event{ev(8, 8, 2)})
	gate <- struct{}{} // admit exactly one Access call
	within(t, 5*time.Second, "first event", func() { _ = e.WaitReceived(0, 1) })
	if got := e.Received(0); got != 1 {
		t.Fatalf("Received = %d, want exactly 1 while the gate is held", got)
	}
	gate <- struct{}{}
	within(t, 5*time.Second, "second event", func() { _ = e.WaitReceived(0, 2) })
}

func TestRaceReportedThroughCallback(t *testing.T) {
	stub := &stubAnalyzer{raceAt: 7}
	var got atomic.Pointer[detector.Race]
	e := newTestEngine(t, 1, 8, []*stubAnalyzer{stub}, func(cfg *Config) {
		cfg.OnRace = func(r *detector.Race) { got.CompareAndSwap(nil, r) }
	})

	if err := e.Notify(0, []detector.Event{ev(0, 8, 7)}); err != nil {
		t.Fatal(err)
	}
	within(t, 5*time.Second, "race callback", func() {
		for got.Load() == nil {
			time.Sleep(time.Millisecond)
		}
	})
	if race := e.Analyse(0, ev(8, 8, 7)); race == nil {
		t.Fatal("Analyse did not return the race")
	}
}

func TestStopUnblocksEverything(t *testing.T) {
	stop := make(chan struct{})
	gate := make(chan struct{})
	stub := &stubAnalyzer{gate: gate}
	e := newTestEngine(t, 1, 1, []*stubAnalyzer{stub}, func(cfg *Config) {
		cfg.Stop = stop
	})

	// Fill the pipeline: one batch at the gate, one in the channel.
	_ = e.Notify(0, []detector.Event{ev(0, 8, 1)})
	_ = e.Notify(0, []detector.Event{ev(8, 8, 2)})

	waitErr := make(chan error, 1)
	go func() { waitErr <- e.WaitReceived(0, 10) }()
	sendRet := make(chan error, 1)
	go func() { sendRet <- e.Notify(0, []detector.Event{ev(16, 8, 3)}) }()

	time.Sleep(10 * time.Millisecond)
	close(stop)

	within(t, 5*time.Second, "waiter to observe stop", func() {
		if err := <-waitErr; err == nil {
			t.Error("WaitReceived returned nil after stop")
		}
	})
	within(t, 5*time.Second, "blocked sender to observe stop", func() {
		if err := <-sendRet; err == nil {
			t.Error("Notify returned nil after stop")
		}
	})
	close(gate)
}

func TestCloseUnblocksBlockedSender(t *testing.T) {
	gate := make(chan struct{})
	stub := &stubAnalyzer{gate: gate}
	e := newTestEngine(t, 1, 1, []*stubAnalyzer{stub}, nil)

	_ = e.Notify(0, []detector.Event{ev(0, 8, 1)})
	_ = e.Notify(0, []detector.Event{ev(8, 8, 2)})
	sendRet := make(chan error, 1)
	go func() { sendRet <- e.Notify(0, []detector.Event{ev(16, 8, 3)}) }()

	time.Sleep(10 * time.Millisecond)
	e.Close()
	within(t, 5*time.Second, "blocked sender to observe close", func() {
		if err := <-sendRet; err != ErrClosed {
			t.Errorf("Notify = %v, want ErrClosed", err)
		}
	})
	close(gate)
}
